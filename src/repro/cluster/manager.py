"""Cluster manager — Dirigent-like multi-worker orchestration (§5).

"The cluster manager orchestrates multiple worker nodes and load
balances composition invocations across nodes.  We extended Dirigent to
support Dandelion worker nodes, but other cluster managers could also
be used."

The :class:`ClusterManager` owns a fleet of :class:`WorkerNode`\\ s that
share one simulation environment and one simulated network (so they see
the same remote services), replicates function/composition
registrations across the fleet, and routes invocations through a
pluggable :class:`~repro.sched.routing.RoutingPolicy` (see
docs/scheduling.md).  Policies are named in the back-compat
:data:`ROUTING_POLICIES` registry or passed as objects:

* ``round_robin`` — rotate over the stable worker-index ring;
* ``least_loaded`` — fewest in-flight invocations (Dirigent-style
  just-in-time placement);
* ``random`` — seeded uniform choice;
* ``jsq`` — power-of-d-choices sampling (d=2);
* ``locality`` — prefer workers with warm binary caches for the
  invoked composition;
* ``gray`` — quarantine latency-degraded workers with load-bounded
  spill-back (requires ``latency_health=True``).

Routing decisions consume an immutable
:class:`~repro.sched.snapshots.ClusterSnapshot` built in O(1): the
healthy-index ring is maintained incrementally on
``fail_worker``/``restore_worker``/``add_worker`` rather than rebuilt
per invocation.

Workers can also be added while the cluster is running (scale-out);
previously registered functions and compositions are replayed onto the
new node before it receives traffic.

Fail-stop fault domain (§6.1): :meth:`fail_worker` crashes a worker —
it is skipped by routing, invocations in flight on it are re-routed to
a healthy peer (safe because compositions are pure compute and
protocol-checked communication, so re-execution is transparent), and
its state is lost.  :meth:`restore_worker` brings the node back as a
*fresh* worker with registrations replayed, mirroring how Dirigent
re-admits a recovered node.  :class:`~repro.cluster.faults.WorkerFaultInjector`
drives these transitions from seeded MTTF/MTTR distributions.

Gray-failure fault domain (docs/fault_tolerance.md): :meth:`limp_worker`
degrades a worker's engine throughput without killing it — the
"limplock" regime fail-stop detectors are blind to.  Two optional
defenses, both off by default (and byte-identical to the legacy
behaviour when off):

* ``latency_health=True`` maintains a per-worker completion-latency
  EWMA (:class:`~repro.cluster.health.LatencyHealthTracker`) and a
  *preferred* routing ring excluding quarantined workers, which every
  routing policy consumes through the snapshot's ``candidates``;
* ``hedge=True`` re-issues an invocation to a second worker once it
  has been outstanding longer than a percentile of observed latency,
  taking whichever completion arrives first.  Hedges are only sent for
  pure-compute compositions (re-execution is idempotent, §6.1) and are
  capped at ``hedge_budget_fraction`` of traffic.
"""

from __future__ import annotations

from typing import Optional, Union

from ..composition.graph import Composition
from ..composition.registry import FunctionBinary
from ..dispatcher.dispatcher import InvocationResult
from ..errors import InvocationError, WorkerCrashed
from ..net.network import LatencyModel, SimulatedNetwork
from ..sched import ClusterSnapshot, RoutingPolicy, make_routing_policy
from ..sched.routing import ROUTING_POLICIES
from ..sim.core import Environment, Interrupt
from ..sim.distributions import Rng
from ..sim.metrics import LatencyRecorder
from ..worker import WorkerConfig, WorkerNode
from .health import LatencyHealthTracker

__all__ = ["ClusterManager", "ROUTING_POLICIES"]

# Cluster-manager hop: routing decision + request forwarding.
_ROUTING_OVERHEAD_SECONDS = 50e-6


def _pure_compute(composition: Composition) -> bool:
    """True when the composition (recursively) has no communication
    nodes — the idempotency precondition for hedged re-execution."""
    for node in composition.nodes.values():
        if node.kind == "communication":
            return False
        if node.kind == "composition" and not _pure_compute(node.composition):
            return False
    return True


class ClusterManager:
    """Routes composition invocations over a fleet of worker nodes."""

    def __init__(
        self,
        worker_count: int = 2,
        worker_config: Optional[WorkerConfig] = None,
        policy: Union[str, RoutingPolicy] = "least_loaded",
        env: Optional[Environment] = None,
        network: Optional[SimulatedNetwork] = None,
        seed: int = 0,
        max_reroutes: int = 3,
        latency_health: bool = False,
        health_tracker: Optional[LatencyHealthTracker] = None,
        quarantine_ttl_seconds: float = 1.0,
        hedge: bool = False,
        hedge_percentile: float = 95.0,
        hedge_budget_fraction: float = 0.05,
        hedge_min_samples: int = 20,
    ):
        if worker_count < 1:
            raise ValueError("cluster needs at least one worker")
        if not 0.0 < hedge_percentile < 100.0:
            raise ValueError("hedge_percentile must be in (0, 100)")
        if not 0.0 <= hedge_budget_fraction <= 1.0:
            raise ValueError("hedge_budget_fraction must be in [0, 1]")
        if hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        self.env = env or Environment()
        self.network = network or SimulatedNetwork(self.env, LatencyModel())
        self._rng = Rng(seed)
        self.routing_policy = make_routing_policy(policy, self._rng)
        # Back-compat: `.policy` stays the string name experiments log.
        self.policy = policy if isinstance(policy, str) else self.routing_policy.name
        self._config = worker_config or WorkerConfig()
        self.max_reroutes = max_reroutes
        self.workers: list[WorkerNode] = []
        self._functions: list[FunctionBinary] = []
        self._compositions: list = []
        # Function names used by each registered composition, sorted for
        # deterministic locality scoring (snapshot contract).
        self._composition_functions: dict[str, tuple] = {}
        self._in_flight: dict[int, int] = {}
        self._healthy: dict[int, bool] = {}
        # Healthy-index ring, maintained incrementally so the fault-free
        # routing fast path builds its snapshot in O(1).
        self._healthy_indices: tuple = ()
        # Cluster-side processes waiting on each worker; interrupted
        # (and re-routed) when that worker fail-stops.
        self._crash_waiters: dict[int, set] = {}
        self.latencies = LatencyRecorder("cluster")
        self.failed_latencies = LatencyRecorder("cluster-failed")
        self.invocations_routed = 0
        self.invocations_failed = 0
        self.worker_crashes = 0
        self.worker_restores = 0
        self.reroutes = 0
        self.per_worker_invocations: dict[int, int] = {}
        self.per_worker_failures: dict[int, int] = {}
        self.per_worker_crashes: dict[int, int] = {}
        # Gray-failure defenses.  `health is None` (the default) keeps
        # the snapshot free of health references, so every routing
        # policy sees exactly the legacy inputs and fault-free runs
        # stay bit-identical.
        if health_tracker is not None:
            self.health: Optional[LatencyHealthTracker] = health_tracker
        elif latency_health:
            self.health = LatencyHealthTracker()
        else:
            self.health = None
        # Preferred ring: healthy AND not quarantined, maintained
        # incrementally like the healthy ring (rebuilt only on
        # quarantine flips and membership changes).
        self._preferred_indices: tuple = ()
        # Quarantine is a probation, not a death sentence: a sidelined
        # worker receives (almost) no traffic, so its EWMA can never
        # recover on its own.  After the TTL the manager forgets the
        # worker's latency history and lets it re-earn its place — a
        # still-limping worker re-quarantines within min_samples
        # completions, a recovered one rejoins cleanly.
        if quarantine_ttl_seconds <= 0:
            raise ValueError("quarantine_ttl_seconds must be positive")
        self.quarantine_ttl_seconds = quarantine_ttl_seconds
        self.hedge = hedge
        self.hedge_percentile = hedge_percentile
        self.hedge_budget_fraction = hedge_budget_fraction
        self.hedge_min_samples = hedge_min_samples
        self.hedges_issued = 0
        self.hedges_won = 0
        self._hedged_invocations = 0
        # composition name -> safe to hedge (pure compute, §6.1).
        self._hedgeable: dict[str, bool] = {}
        for _ in range(worker_count):
            self.add_worker()

    # -- fleet management ------------------------------------------------------

    def add_worker(self) -> WorkerNode:
        """Add (scale out) one worker; replays existing registrations."""
        worker = self._fresh_worker()
        index = len(self.workers)
        self.workers.append(worker)
        self._in_flight[index] = 0
        self._healthy[index] = True
        self._refresh_healthy_indices()
        self._refresh_preferred_indices()
        self._crash_waiters[index] = set()
        self.per_worker_invocations[index] = 0
        self.per_worker_failures[index] = 0
        self.per_worker_crashes[index] = 0
        return worker

    def _fresh_worker(self) -> WorkerNode:
        worker = WorkerNode(self._config, env=self.env, network=self.network)
        for binary in self._functions:
            worker.frontend.register_function(binary)
        for composition in self._compositions:
            worker.frontend.register_composition(composition)
        return worker

    @property
    def worker_count(self) -> int:
        return len(self.workers)

    @property
    def healthy_worker_count(self) -> int:
        return len(self._healthy_indices)

    def is_healthy(self, index: int) -> bool:
        return self._healthy[index]

    def _refresh_healthy_indices(self) -> None:
        """Rebuild the healthy ring on membership changes (rare: add,
        fail, restore) so routing never rescans the fleet."""
        self._healthy_indices = tuple(
            index for index, ok in self._healthy.items() if ok
        )

    def _refresh_preferred_indices(self) -> None:
        """Rebuild the preferred (non-quarantined) ring.

        Runs only on quarantine flips and membership changes — both
        rare — so routing keeps its O(1) snapshot on the hot path."""
        if self.health is None:
            return
        is_quarantined = self.health.is_quarantined
        self._preferred_indices = tuple(
            index for index in self._healthy_indices if not is_quarantined(index)
        )

    def is_quarantined(self, index: int) -> bool:
        return self.health is not None and self.health.is_quarantined(index)

    # -- fail-stop fault domain (§6.1) ----------------------------------------

    def fail_worker(self, index: int) -> None:
        """Crash worker ``index`` (fail-stop): its state is lost.

        Routing skips the worker from now on, and every cluster-side
        invocation currently in flight on it is interrupted and
        re-routed to a healthy peer — transparent re-execution is safe
        because compositions are pure (§6.1).  The crashed node's
        in-simulation activity is abandoned (results discarded), the
        discrete-event analogue of the process disappearing.
        """
        if not 0 <= index < len(self.workers):
            raise IndexError(f"no worker {index}")
        if not self._healthy[index]:
            raise ValueError(f"worker {index} is already failed")
        self._healthy[index] = False
        self._refresh_healthy_indices()
        if self.health is not None:
            # A dead worker's latency history is meaningless for the
            # fresh node that will replace it.
            self.health.reset(index)
            self._refresh_preferred_indices()
        self.worker_crashes += 1
        self.per_worker_crashes[index] += 1
        cause = WorkerCrashed(index)
        waiters = self._crash_waiters[index]
        for process in list(waiters):
            if process.is_alive:
                process.interrupt(cause)
        waiters.clear()

    def restore_worker(self, index: int) -> WorkerNode:
        """Bring worker ``index`` back as a fresh node (state was lost).

        Fail-stop semantics mean nothing survives the crash, so restore
        builds a brand-new :class:`WorkerNode` and replays every
        function/composition registration before the node re-enters the
        routing pool.
        """
        if not 0 <= index < len(self.workers):
            raise IndexError(f"no worker {index}")
        if self._healthy[index]:
            raise ValueError(f"worker {index} is healthy; nothing to restore")
        worker = self._fresh_worker()
        self.workers[index] = worker
        self._healthy[index] = True
        self._refresh_healthy_indices()
        if self.health is not None:
            self.health.reset(index)
            self._refresh_preferred_indices()
        self._in_flight[index] = 0
        self.worker_restores += 1
        return worker

    # -- gray-failure fault domain (limplock) ---------------------------------

    def limp_worker(self, index: int, multiplier: float) -> None:
        """Degrade worker ``index`` to ``1/multiplier`` of nominal speed.

        The worker stays in the healthy ring and keeps serving — just
        slower (every compute service time and network exchange is
        stretched by ``multiplier``).  Fail-stop detection cannot see
        this; only latency-based health can.
        """
        if not 0 <= index < len(self.workers):
            raise IndexError(f"no worker {index}")
        if not self._healthy[index]:
            raise ValueError(f"worker {index} is down; dead workers cannot limp")
        self.workers[index].set_limp(multiplier)

    def clear_limp(self, index: int) -> None:
        """Restore worker ``index`` to nominal engine throughput."""
        if not 0 <= index < len(self.workers):
            raise IndexError(f"no worker {index}")
        self.workers[index].set_limp(1.0)

    def limp_factor(self, index: int) -> float:
        return self.workers[index].limp_multiplier

    @property
    def limping_worker_count(self) -> int:
        return sum(1 for worker in self.workers if worker.throttle.limping)

    # -- registration (fanned out to every node) ----------------------------------

    def register_function(self, binary: FunctionBinary) -> None:
        self._functions.append(binary)
        for worker in self.workers:
            worker.frontend.register_function(binary)

    def register_composition(self, composition_or_source) -> Composition:
        registered: Optional[Composition] = None
        for worker in self.workers:
            registered = worker.frontend.register_composition(composition_or_source)
        assert registered is not None
        self._compositions.append(registered)
        self._composition_functions[registered.name] = tuple(
            sorted(registered.required_functions())
        )
        self._hedgeable[registered.name] = _pure_compute(registered)
        ingest = getattr(self.routing_policy, "ingest_summary", None)
        if ingest is not None and self.workers:
            # Cost-aware policies take the static dataflow summary at
            # registration time; other policies never pay for analysis.
            summary = self.workers[0].dispatcher.cost_summary(registered.name)
            if summary is not None:
                ingest(summary)
        return registered

    # -- routing ---------------------------------------------------------------

    def _warm_functions_of(self, index: int):
        """Live warm-binary view of one worker (locality signal)."""
        return self.workers[index].dispatcher.warm_binaries

    def snapshot(self, composition_name: Optional[str] = None) -> ClusterSnapshot:
        """Build the routing policy's O(1) view of the fleet."""
        if self.health is None:
            return ClusterSnapshot(
                self._healthy_indices,
                len(self.workers),
                self._healthy,
                self._in_flight,
                composition_name,
                self._composition_functions.get(composition_name, ()),
                self._warm_functions_of,
            )
        return ClusterSnapshot(
            self._healthy_indices,
            len(self.workers),
            self._healthy,
            self._in_flight,
            composition_name,
            self._composition_functions.get(composition_name, ()),
            self._warm_functions_of,
            self._preferred_indices,
            self.health.scores,
            self.health.quarantined,
        )

    def _observe_latency(self, index: int, elapsed: float) -> None:
        """Feed one completion into latency health (no-op when off)."""
        if self.health is not None and self.health.observe(index, elapsed):
            self._refresh_preferred_indices()
            if self.health.is_quarantined(index):
                self.env.process(self._probation(index))

    def _probation(self, index: int):
        """After the quarantine TTL, amnesty: forget the worker's
        latency history so it can rejoin and be re-judged afresh."""
        yield self.env.timeout(self.quarantine_ttl_seconds)
        if self.health is not None and self.health.is_quarantined(index):
            self.health.reset(index)
            self._refresh_preferred_indices()

    def _pick_worker(self, composition_name: Optional[str] = None) -> Optional[int]:
        """Pick a healthy worker index, or ``None`` if the fleet is down.

        With every worker healthy each default policy consumes exactly
        the same decision stream as the pre-``repro.sched`` inline
        dispatch, so fault-free runs stay bit-identical.
        """
        if not self._healthy_indices:
            return None
        return self.routing_policy.decide(self.snapshot(composition_name))

    def invoke(self, composition_name: str, inputs: dict):
        """Route one invocation; returns a process → InvocationResult."""
        if self.hedge and self._hedgeable.get(composition_name, False):
            return self.env.process(self._invoke_hedged(composition_name, inputs))
        return self.env.process(self._invoke(composition_name, inputs))

    def _invoke(self, composition_name: str, inputs: dict):
        yield self.env.timeout(_ROUTING_OVERHEAD_SECONDS)
        started = self.env.now
        reroutes = 0
        while True:
            index = self._pick_worker(composition_name)
            if index is None:
                return self._fail_invocation(
                    started, InvocationError("no healthy workers available")
                )
            self._in_flight[index] += 1
            self.per_worker_invocations[index] += 1
            self.invocations_routed += 1
            waiter = self.env.active_process
            self._crash_waiters[index].add(waiter)
            crashed = False
            attempt_started = self.env.now
            try:
                result = yield self.workers[index].frontend.invoke(
                    composition_name, inputs
                )
            except Interrupt:
                # The worker fail-stopped under us; whatever it was
                # doing is lost.  Re-route to a healthy peer.
                crashed = True
            finally:
                self._crash_waiters[index].discard(waiter)
                if self._in_flight.get(index, 0) > 0:
                    self._in_flight[index] -= 1
            if crashed:
                reroutes += 1
                if reroutes > self.max_reroutes:
                    return self._fail_invocation(started, WorkerCrashed(index))
                self.reroutes += 1
                continue
            # Per-attempt latency is the gray-failure signal: error
            # completions (deadline expirations on a limping node)
            # carry it just as loudly as successes.
            self._observe_latency(index, self.env.now - attempt_started)
            if result.ok:
                self.latencies.record(self.env.now - started)
            else:
                # Error paths are telemetry too: count them against the
                # worker that served the request and record their
                # latency separately so failures never vanish silently.
                self.invocations_failed += 1
                self.per_worker_failures[index] += 1
                self.failed_latencies.record(self.env.now - started)
            return result

    # -- hedged requests (gray-failure tail-latency defense) -------------------

    def _hedge_delay(self) -> Optional[float]:
        """Percentile-of-observed-latency hedge trigger, or ``None``
        until enough completions have been seen to estimate it."""
        if self.latencies.count < self.hedge_min_samples:
            return None
        return self.latencies.percentile(self.hedge_percentile)

    def _hedge_budget_available(self) -> bool:
        """True while issuing one more hedge keeps the hedge rate at or
        below ``hedge_budget_fraction`` of hedge-eligible traffic."""
        return (self.hedges_issued + 1) <= (
            self.hedge_budget_fraction * self._hedged_invocations
        )

    def _pick_hedge_worker(
        self, primary: int, composition_name: Optional[str]
    ) -> Optional[int]:
        """Deterministic secondary choice: least outstanding over the
        non-quarantined candidates, excluding the primary."""
        snapshot = self.snapshot(composition_name)
        best = None
        best_load = None
        for pool in (snapshot.candidates, snapshot.healthy):
            for index in pool:
                if index == primary:
                    continue
                load = self._in_flight[index]
                if best is None or load < best_load:
                    best = index
                    best_load = load
            if best is not None:
                return best
        return None

    def _route_to(self, index: int) -> None:
        """Account one routed attempt against a worker, synchronously
        with the routing decision (so same-instant decisions see it)."""
        self._in_flight[index] += 1
        self.per_worker_invocations[index] += 1
        self.invocations_routed += 1

    def _attempt(self, index: int, composition_name: str, inputs: dict):
        """One worker-level try, as its own process so attempts race.

        Returns ``(index, result)`` — ``result`` is ``None`` when the
        worker fail-stopped mid-attempt (the crash sentinel).

        The caller increments ``_in_flight`` (and the routed counters)
        *before* spawning this process: the attempt only starts on a
        later event-loop turn, and by then other same-instant routing
        decisions must already see the load this attempt adds.
        """
        waiter = self.env.active_process
        self._crash_waiters[index].add(waiter)
        attempt_started = self.env.now
        try:
            result = yield self.workers[index].frontend.invoke(
                composition_name, inputs
            )
        except Interrupt:
            return (index, None)
        finally:
            self._crash_waiters[index].discard(waiter)
            if self._in_flight.get(index, 0) > 0:
                self._in_flight[index] -= 1
        self._observe_latency(index, self.env.now - attempt_started)
        return (index, result)

    def _invoke_hedged(self, composition_name: str, inputs: dict):
        """Route one hedge-eligible invocation.

        The primary attempt runs as a child process; once it has been
        outstanding for the hedge delay (a percentile of observed
        cluster latency), a second attempt is issued to a different
        worker and the first completion wins.  Only pure-compute
        compositions take this path (``invoke`` gates on
        ``_hedgeable``), so the duplicate execution a hedge implies is
        idempotent by construction — the loser just burns simulated
        cycles, exactly like re-execution after a crash (§6.1).
        """
        yield self.env.timeout(_ROUTING_OVERHEAD_SECONDS)
        started = self.env.now
        self._hedged_invocations += 1
        reroutes = 0
        while True:
            index = self._pick_worker(composition_name)
            if index is None:
                return self._fail_invocation(
                    started, InvocationError("no healthy workers available")
                )
            self._route_to(index)
            primary = self.env.process(
                self._attempt(index, composition_name, inputs)
            )
            attempts = [primary]
            if self._hedge_budget_available():
                delay = self._hedge_delay()
                if delay is not None:
                    timer = self.env.timeout(delay)
                    yield self.env.any_of((primary, timer))
                    # Re-check the budget at issue time: other hedged
                    # invocations may have spent it while we waited
                    # (the pre-wait check is only a cheap early out).
                    if primary.is_alive and self._hedge_budget_available():
                        hedge_index = self._pick_hedge_worker(
                            index, composition_name
                        )
                        if hedge_index is not None:
                            self.hedges_issued += 1
                            self._route_to(hedge_index)
                            attempts.append(
                                self.env.process(
                                    self._attempt(
                                        hedge_index, composition_name, inputs
                                    )
                                )
                            )
            # First *successful* completion wins; an error completion is
            # kept as a fallback while another attempt is still running
            # (its worker may still come through).  Losing attempts are
            # left to finish on their own — their in-flight accounting
            # unwinds in _attempt and their results are discarded.
            winner = None
            winner_index = -1
            result = None
            fallback_index = -1
            fallback = None
            outstanding = list(attempts)
            while outstanding:
                if len(outstanding) == 1:
                    attempt = outstanding[0]
                    value = yield attempt
                else:
                    yield self.env.any_of(outstanding)
                    attempt = next(p for p in outstanding if p.processed)
                    value = attempt.value
                outstanding.remove(attempt)
                attempt_index, attempt_result = value
                if attempt_result is None:
                    continue  # that worker crashed; drain the others
                if attempt_result.ok:
                    winner = attempt
                    winner_index = attempt_index
                    result = attempt_result
                    break
                if fallback is None:
                    fallback_index = attempt_index
                    fallback = attempt_result
            if result is None and fallback is not None:
                winner_index = fallback_index
                result = fallback
            if result is None:
                # Every attempt died under a crashing worker.
                reroutes += 1
                if reroutes > self.max_reroutes:
                    return self._fail_invocation(started, WorkerCrashed(index))
                self.reroutes += 1
                continue
            if winner is not None and winner is not primary:
                self.hedges_won += 1
            if result.ok:
                self.latencies.record(self.env.now - started)
            else:
                self.invocations_failed += 1
                self.per_worker_failures[winner_index] += 1
                self.failed_latencies.record(self.env.now - started)
            return result

    def _fail_invocation(self, started: float, error: Exception) -> InvocationResult:
        self.invocations_failed += 1
        self.failed_latencies.record(self.env.now - started)
        return InvocationResult(
            invocation_id=-1,
            error=error,
            started_at=started,
            finished_at=self.env.now,
        )

    def invoke_and_run(self, composition_name: str, inputs: dict):
        process = self.invoke(composition_name, inputs)
        return self.env.run(until=process)

    # -- telemetry ----------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "workers": len(self.workers),
            "healthy_workers": self.healthy_worker_count,
            "policy": self.policy,
            "invocations_routed": self.invocations_routed,
            "per_worker": dict(self.per_worker_invocations),
            "total_committed_bytes": sum(w.memory.current_bytes for w in self.workers),
            "peak_committed_bytes": sum(w.memory.peak_bytes for w in self.workers),
            "failures": {
                "worker_crashes": self.worker_crashes,
                "worker_restores": self.worker_restores,
                "reroutes": self.reroutes,
                "failed_invocations": self.invocations_failed,
                "per_worker_failures": dict(self.per_worker_failures),
                "per_worker_crashes": dict(self.per_worker_crashes),
            },
            "gray": {
                "limping_workers": self.limping_worker_count,
                "quarantined_workers": (
                    self.health.quarantined_count() if self.health else 0
                ),
                "quarantine_entries": (
                    self.health.quarantine_entries if self.health else 0
                ),
                "quarantine_exits": (
                    self.health.quarantine_exits if self.health else 0
                ),
                "hedges_issued": self.hedges_issued,
                "hedges_won": self.hedges_won,
                "hedge_rate": (
                    self.hedges_issued / self._hedged_invocations
                    if self._hedged_invocations
                    else 0.0
                ),
            },
        }
