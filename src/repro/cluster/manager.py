"""Cluster manager — Dirigent-like multi-worker orchestration (§5).

"The cluster manager orchestrates multiple worker nodes and load
balances composition invocations across nodes.  We extended Dirigent to
support Dandelion worker nodes, but other cluster managers could also
be used."

The :class:`ClusterManager` owns a fleet of :class:`WorkerNode`\\ s that
share one simulation environment and one simulated network (so they see
the same remote services), replicates function/composition
registrations across the fleet, and routes invocations through a
pluggable :class:`~repro.sched.routing.RoutingPolicy` (see
docs/scheduling.md).  Policies are named in the back-compat
:data:`ROUTING_POLICIES` registry or passed as objects:

* ``round_robin`` — rotate over the stable worker-index ring;
* ``least_loaded`` — fewest in-flight invocations (Dirigent-style
  just-in-time placement);
* ``random`` — seeded uniform choice;
* ``jsq`` — power-of-d-choices sampling (d=2);
* ``locality`` — prefer workers with warm binary caches for the
  invoked composition.

Routing decisions consume an immutable
:class:`~repro.sched.snapshots.ClusterSnapshot` built in O(1): the
healthy-index ring is maintained incrementally on
``fail_worker``/``restore_worker``/``add_worker`` rather than rebuilt
per invocation.

Workers can also be added while the cluster is running (scale-out);
previously registered functions and compositions are replayed onto the
new node before it receives traffic.

Fail-stop fault domain (§6.1): :meth:`fail_worker` crashes a worker —
it is skipped by routing, invocations in flight on it are re-routed to
a healthy peer (safe because compositions are pure compute and
protocol-checked communication, so re-execution is transparent), and
its state is lost.  :meth:`restore_worker` brings the node back as a
*fresh* worker with registrations replayed, mirroring how Dirigent
re-admits a recovered node.  :class:`~repro.cluster.faults.WorkerFaultInjector`
drives these transitions from seeded MTTF/MTTR distributions.
"""

from __future__ import annotations

from typing import Optional, Union

from ..composition.graph import Composition
from ..composition.registry import FunctionBinary
from ..dispatcher.dispatcher import InvocationResult
from ..errors import InvocationError, WorkerCrashed
from ..net.network import LatencyModel, SimulatedNetwork
from ..sched import ClusterSnapshot, RoutingPolicy, make_routing_policy
from ..sched.routing import ROUTING_POLICIES
from ..sim.core import Environment, Interrupt
from ..sim.distributions import Rng
from ..sim.metrics import LatencyRecorder
from ..worker import WorkerConfig, WorkerNode

__all__ = ["ClusterManager", "ROUTING_POLICIES"]

# Cluster-manager hop: routing decision + request forwarding.
_ROUTING_OVERHEAD_SECONDS = 50e-6


class ClusterManager:
    """Routes composition invocations over a fleet of worker nodes."""

    def __init__(
        self,
        worker_count: int = 2,
        worker_config: Optional[WorkerConfig] = None,
        policy: Union[str, RoutingPolicy] = "least_loaded",
        env: Optional[Environment] = None,
        network: Optional[SimulatedNetwork] = None,
        seed: int = 0,
        max_reroutes: int = 3,
    ):
        if worker_count < 1:
            raise ValueError("cluster needs at least one worker")
        self.env = env or Environment()
        self.network = network or SimulatedNetwork(self.env, LatencyModel())
        self._rng = Rng(seed)
        self.routing_policy = make_routing_policy(policy, self._rng)
        # Back-compat: `.policy` stays the string name experiments log.
        self.policy = policy if isinstance(policy, str) else self.routing_policy.name
        self._config = worker_config or WorkerConfig()
        self.max_reroutes = max_reroutes
        self.workers: list[WorkerNode] = []
        self._functions: list[FunctionBinary] = []
        self._compositions: list = []
        # Function names used by each registered composition, sorted for
        # deterministic locality scoring (snapshot contract).
        self._composition_functions: dict[str, tuple] = {}
        self._in_flight: dict[int, int] = {}
        self._healthy: dict[int, bool] = {}
        # Healthy-index ring, maintained incrementally so the fault-free
        # routing fast path builds its snapshot in O(1).
        self._healthy_indices: tuple = ()
        # Cluster-side processes waiting on each worker; interrupted
        # (and re-routed) when that worker fail-stops.
        self._crash_waiters: dict[int, set] = {}
        self.latencies = LatencyRecorder("cluster")
        self.failed_latencies = LatencyRecorder("cluster-failed")
        self.invocations_routed = 0
        self.invocations_failed = 0
        self.worker_crashes = 0
        self.worker_restores = 0
        self.reroutes = 0
        self.per_worker_invocations: dict[int, int] = {}
        self.per_worker_failures: dict[int, int] = {}
        self.per_worker_crashes: dict[int, int] = {}
        for _ in range(worker_count):
            self.add_worker()

    # -- fleet management ------------------------------------------------------

    def add_worker(self) -> WorkerNode:
        """Add (scale out) one worker; replays existing registrations."""
        worker = self._fresh_worker()
        index = len(self.workers)
        self.workers.append(worker)
        self._in_flight[index] = 0
        self._healthy[index] = True
        self._refresh_healthy_indices()
        self._crash_waiters[index] = set()
        self.per_worker_invocations[index] = 0
        self.per_worker_failures[index] = 0
        self.per_worker_crashes[index] = 0
        return worker

    def _fresh_worker(self) -> WorkerNode:
        worker = WorkerNode(self._config, env=self.env, network=self.network)
        for binary in self._functions:
            worker.frontend.register_function(binary)
        for composition in self._compositions:
            worker.frontend.register_composition(composition)
        return worker

    @property
    def worker_count(self) -> int:
        return len(self.workers)

    @property
    def healthy_worker_count(self) -> int:
        return len(self._healthy_indices)

    def is_healthy(self, index: int) -> bool:
        return self._healthy[index]

    def _refresh_healthy_indices(self) -> None:
        """Rebuild the healthy ring on membership changes (rare: add,
        fail, restore) so routing never rescans the fleet."""
        self._healthy_indices = tuple(
            index for index, ok in self._healthy.items() if ok
        )

    # -- fail-stop fault domain (§6.1) ----------------------------------------

    def fail_worker(self, index: int) -> None:
        """Crash worker ``index`` (fail-stop): its state is lost.

        Routing skips the worker from now on, and every cluster-side
        invocation currently in flight on it is interrupted and
        re-routed to a healthy peer — transparent re-execution is safe
        because compositions are pure (§6.1).  The crashed node's
        in-simulation activity is abandoned (results discarded), the
        discrete-event analogue of the process disappearing.
        """
        if not 0 <= index < len(self.workers):
            raise IndexError(f"no worker {index}")
        if not self._healthy[index]:
            raise ValueError(f"worker {index} is already failed")
        self._healthy[index] = False
        self._refresh_healthy_indices()
        self.worker_crashes += 1
        self.per_worker_crashes[index] += 1
        cause = WorkerCrashed(index)
        waiters = self._crash_waiters[index]
        for process in list(waiters):
            if process.is_alive:
                process.interrupt(cause)
        waiters.clear()

    def restore_worker(self, index: int) -> WorkerNode:
        """Bring worker ``index`` back as a fresh node (state was lost).

        Fail-stop semantics mean nothing survives the crash, so restore
        builds a brand-new :class:`WorkerNode` and replays every
        function/composition registration before the node re-enters the
        routing pool.
        """
        if not 0 <= index < len(self.workers):
            raise IndexError(f"no worker {index}")
        if self._healthy[index]:
            raise ValueError(f"worker {index} is healthy; nothing to restore")
        worker = self._fresh_worker()
        self.workers[index] = worker
        self._healthy[index] = True
        self._refresh_healthy_indices()
        self._in_flight[index] = 0
        self.worker_restores += 1
        return worker

    # -- registration (fanned out to every node) ----------------------------------

    def register_function(self, binary: FunctionBinary) -> None:
        self._functions.append(binary)
        for worker in self.workers:
            worker.frontend.register_function(binary)

    def register_composition(self, composition_or_source) -> Composition:
        registered: Optional[Composition] = None
        for worker in self.workers:
            registered = worker.frontend.register_composition(composition_or_source)
        assert registered is not None
        self._compositions.append(registered)
        self._composition_functions[registered.name] = tuple(
            sorted(registered.required_functions())
        )
        return registered

    # -- routing ---------------------------------------------------------------

    def _warm_functions_of(self, index: int):
        """Live warm-binary view of one worker (locality signal)."""
        return self.workers[index].dispatcher.warm_binaries

    def snapshot(self, composition_name: Optional[str] = None) -> ClusterSnapshot:
        """Build the routing policy's O(1) view of the fleet."""
        return ClusterSnapshot(
            self._healthy_indices,
            len(self.workers),
            self._healthy,
            self._in_flight,
            composition_name,
            self._composition_functions.get(composition_name, ()),
            self._warm_functions_of,
        )

    def _pick_worker(self, composition_name: Optional[str] = None) -> Optional[int]:
        """Pick a healthy worker index, or ``None`` if the fleet is down.

        With every worker healthy each default policy consumes exactly
        the same decision stream as the pre-``repro.sched`` inline
        dispatch, so fault-free runs stay bit-identical.
        """
        if not self._healthy_indices:
            return None
        return self.routing_policy.decide(self.snapshot(composition_name))

    def invoke(self, composition_name: str, inputs: dict):
        """Route one invocation; returns a process → InvocationResult."""
        return self.env.process(self._invoke(composition_name, inputs))

    def _invoke(self, composition_name: str, inputs: dict):
        yield self.env.timeout(_ROUTING_OVERHEAD_SECONDS)
        started = self.env.now
        reroutes = 0
        while True:
            index = self._pick_worker(composition_name)
            if index is None:
                return self._fail_invocation(
                    started, InvocationError("no healthy workers available")
                )
            self._in_flight[index] += 1
            self.per_worker_invocations[index] += 1
            self.invocations_routed += 1
            waiter = self.env.active_process
            self._crash_waiters[index].add(waiter)
            crashed = False
            try:
                result = yield self.workers[index].frontend.invoke(
                    composition_name, inputs
                )
            except Interrupt:
                # The worker fail-stopped under us; whatever it was
                # doing is lost.  Re-route to a healthy peer.
                crashed = True
            finally:
                self._crash_waiters[index].discard(waiter)
                if self._in_flight.get(index, 0) > 0:
                    self._in_flight[index] -= 1
            if crashed:
                reroutes += 1
                if reroutes > self.max_reroutes:
                    return self._fail_invocation(started, WorkerCrashed(index))
                self.reroutes += 1
                continue
            if result.ok:
                self.latencies.record(self.env.now - started)
            else:
                # Error paths are telemetry too: count them against the
                # worker that served the request and record their
                # latency separately so failures never vanish silently.
                self.invocations_failed += 1
                self.per_worker_failures[index] += 1
                self.failed_latencies.record(self.env.now - started)
            return result

    def _fail_invocation(self, started: float, error: Exception) -> InvocationResult:
        self.invocations_failed += 1
        self.failed_latencies.record(self.env.now - started)
        return InvocationResult(
            invocation_id=-1,
            error=error,
            started_at=started,
            finished_at=self.env.now,
        )

    def invoke_and_run(self, composition_name: str, inputs: dict):
        process = self.invoke(composition_name, inputs)
        return self.env.run(until=process)

    # -- telemetry ----------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "workers": len(self.workers),
            "healthy_workers": self.healthy_worker_count,
            "policy": self.policy,
            "invocations_routed": self.invocations_routed,
            "per_worker": dict(self.per_worker_invocations),
            "total_committed_bytes": sum(w.memory.current_bytes for w in self.workers),
            "peak_committed_bytes": sum(w.memory.peak_bytes for w in self.workers),
            "failures": {
                "worker_crashes": self.worker_crashes,
                "worker_restores": self.worker_restores,
                "reroutes": self.reroutes,
                "failed_invocations": self.invocations_failed,
                "per_worker_failures": dict(self.per_worker_failures),
                "per_worker_crashes": dict(self.per_worker_crashes),
            },
        }
