"""Cluster manager — Dirigent-like multi-worker orchestration (§5).

"The cluster manager orchestrates multiple worker nodes and load
balances composition invocations across nodes.  We extended Dirigent to
support Dandelion worker nodes, but other cluster managers could also
be used."

The :class:`ClusterManager` owns a fleet of :class:`WorkerNode`\\ s that
share one simulation environment and one simulated network (so they see
the same remote services), replicates function/composition
registrations across the fleet, and routes invocations with a pluggable
load-balancing policy:

* ``round_robin`` — rotate through workers;
* ``least_loaded`` — fewest in-flight invocations (Dirigent-style
  just-in-time placement);
* ``random`` — seeded uniform choice.

Workers can also be added while the cluster is running (scale-out);
previously registered functions and compositions are replayed onto the
new node before it receives traffic.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..composition.graph import Composition
from ..composition.registry import FunctionBinary
from ..net.network import LatencyModel, SimulatedNetwork
from ..sim.core import Environment
from ..sim.distributions import Rng
from ..sim.metrics import LatencyRecorder
from ..worker import WorkerConfig, WorkerNode

__all__ = ["ClusterManager", "ROUTING_POLICIES"]

ROUTING_POLICIES = ("round_robin", "least_loaded", "random")

# Cluster-manager hop: routing decision + request forwarding.
_ROUTING_OVERHEAD_SECONDS = 50e-6


class ClusterManager:
    """Routes composition invocations over a fleet of worker nodes."""

    def __init__(
        self,
        worker_count: int = 2,
        worker_config: Optional[WorkerConfig] = None,
        policy: str = "least_loaded",
        env: Optional[Environment] = None,
        network: Optional[SimulatedNetwork] = None,
        seed: int = 0,
    ):
        if worker_count < 1:
            raise ValueError("cluster needs at least one worker")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {ROUTING_POLICIES}"
            )
        self.env = env or Environment()
        self.network = network or SimulatedNetwork(self.env, LatencyModel())
        self.policy = policy
        self._rng = Rng(seed)
        self._round_robin = itertools.count()
        self._config = worker_config or WorkerConfig()
        self.workers: list[WorkerNode] = []
        self._functions: list[FunctionBinary] = []
        self._compositions: list = []
        self._in_flight: dict[int, int] = {}
        self.latencies = LatencyRecorder("cluster")
        self.invocations_routed = 0
        self.per_worker_invocations: dict[int, int] = {}
        for _ in range(worker_count):
            self.add_worker()

    # -- fleet management ------------------------------------------------------

    def add_worker(self) -> WorkerNode:
        """Add (scale out) one worker; replays existing registrations."""
        worker = WorkerNode(self._config, env=self.env, network=self.network)
        index = len(self.workers)
        self.workers.append(worker)
        self._in_flight[index] = 0
        self.per_worker_invocations[index] = 0
        for binary in self._functions:
            worker.frontend.register_function(binary)
        for composition in self._compositions:
            worker.frontend.register_composition(composition)
        return worker

    @property
    def worker_count(self) -> int:
        return len(self.workers)

    # -- registration (fanned out to every node) ----------------------------------

    def register_function(self, binary: FunctionBinary) -> None:
        self._functions.append(binary)
        for worker in self.workers:
            worker.frontend.register_function(binary)

    def register_composition(self, composition_or_source) -> Composition:
        registered: Optional[Composition] = None
        for worker in self.workers:
            registered = worker.frontend.register_composition(composition_or_source)
        assert registered is not None
        self._compositions.append(registered)
        return registered

    # -- routing ---------------------------------------------------------------

    def _pick_worker(self) -> int:
        if self.policy == "round_robin":
            return next(self._round_robin) % len(self.workers)
        if self.policy == "random":
            return self._rng.randint(0, len(self.workers) - 1)
        # least_loaded: break ties by index for determinism.
        return min(self._in_flight, key=lambda index: (self._in_flight[index], index))

    def invoke(self, composition_name: str, inputs: dict):
        """Route one invocation; returns a process → InvocationResult."""
        return self.env.process(self._invoke(composition_name, inputs))

    def _invoke(self, composition_name: str, inputs: dict):
        yield self.env.timeout(_ROUTING_OVERHEAD_SECONDS)
        index = self._pick_worker()
        self._in_flight[index] += 1
        self.per_worker_invocations[index] += 1
        self.invocations_routed += 1
        started = self.env.now
        try:
            result = yield self.workers[index].frontend.invoke(composition_name, inputs)
        finally:
            self._in_flight[index] -= 1
        if result.ok:
            self.latencies.record(self.env.now - started)
        return result

    def invoke_and_run(self, composition_name: str, inputs: dict):
        process = self.invoke(composition_name, inputs)
        return self.env.run(until=process)

    # -- telemetry ----------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "workers": len(self.workers),
            "policy": self.policy,
            "invocations_routed": self.invocations_routed,
            "per_worker": dict(self.per_worker_invocations),
            "total_committed_bytes": sum(w.memory.current_bytes for w in self.workers),
            "peak_committed_bytes": sum(w.memory.peak_bytes for w in self.workers),
        }
