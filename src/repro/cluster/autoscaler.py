"""Knative-style concurrency autoscaler over a FaaS platform (§7.8).

The paper "use[s] the autoscaling policy in Knative, a popular
open-source FaaS orchestrator, to control the number of Firecracker
MicroVMs over time based on application load".  Knative's KPA scales
each revision on *observed concurrency*:

* desired pods = ceil(average concurrency / per-pod target);
* a *stable* window (60 s) smooths normal operation; a short *panic*
  window (10% of stable) takes over when load doubles, so bursts scale
  up immediately;
* scale-down (including to zero) only happens after the stable window
  agrees, plus a scale-to-zero grace period.

:class:`KnativeFaasPlatform` extends the generic baseline platform with
per-function pod pools driven by this controller.  Requests that find
no ready pod cold-start one (and the autoscaler may pre-provision pods
ahead of demand, which plain keep-alive cannot).

The scaling arithmetic itself lives in the unified scheduling layer
(:class:`~repro.sched.scaling.KpaScalingPolicy`, docs/scheduling.md):
each evaluation tick builds one immutable
:class:`~repro.sched.snapshots.PoolSnapshot` per function and asks the
policy for a :class:`~repro.sched.scaling.ScaleChoice`; this platform
only actuates — creating pre-provisioned pods, holding scale-downs
through the stable window and scale-to-zero grace period.  Alternative
scalers slot in via the ``scaling_policy`` constructor argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines.base import FaasPlatform, FunctionModel, PlatformSpec, Sandbox
from ..sched.sandbox import SandboxChoice, SandboxPolicy
from ..sched.scaling import KpaScalingPolicy
from ..sched.snapshots import PoolSnapshot, SandboxSnapshot
from ..sim.core import Environment
from ..sim.distributions import Rng

__all__ = ["KnativeConfig", "KnativeFaasPlatform"]


@dataclass(frozen=True)
class KnativeConfig:
    """KPA parameters (defaults follow Knative's)."""

    target_concurrency: float = 1.0       # per-pod concurrent requests
    stable_window_seconds: float = 60.0
    panic_window_fraction: float = 0.1
    panic_threshold: float = 2.0          # panic when demand > 2x capacity
    evaluation_interval_seconds: float = 2.0
    scale_to_zero_grace_seconds: float = 30.0
    max_pods_per_function: int = 64

    @property
    def panic_window_seconds(self) -> float:
        return self.stable_window_seconds * self.panic_window_fraction


class _FunctionPool:
    """Pod pool + concurrency history for one function."""

    def __init__(self, function: FunctionModel, memory_bytes: int):
        self.function = function
        self.memory_bytes = memory_bytes
        self.ready: list[Sandbox] = []     # idle pods
        self.busy_count = 0
        self.provisioned = 0               # pods that actually exist
        self.desired = 0
        # (time, concurrency) samples for windowed averages.
        self.samples: list[tuple[float, int]] = []
        self.last_scale_down_vote: Optional[float] = None
        self.zero_since: Optional[float] = None

    @property
    def current_pods(self) -> int:
        """Pods that exist (cold-starting requests are not capacity yet)."""
        return self.provisioned

    def concurrency(self) -> int:
        return self.busy_count

    def record(self, now: float, horizon: float) -> None:
        self.samples.append((now, self.busy_count))
        cutoff = now - horizon
        while self.samples and self.samples[0][0] < cutoff:
            self.samples.pop(0)

    def windowed_average(self, now: float, window: float) -> float:
        cutoff = now - window
        values = [c for t, c in self.samples if t >= cutoff]
        if not values:
            return float(self.busy_count)
        return sum(values) / len(values)

    def snapshot(self, now: float, stable_window: float, panic_window: float) -> PoolSnapshot:
        """Immutable view for the scaling policy at one evaluation tick."""
        return PoolSnapshot(
            self.function.name,
            now,
            len(self.ready),
            self.busy_count,
            self.provisioned,
            self.windowed_average(now, stable_window),
            self.windowed_average(now, panic_window),
        )


class KnativeFaasPlatform(FaasPlatform):
    """FaaS platform whose pods are managed by a Knative-style KPA."""

    def __init__(
        self,
        env: Environment,
        spec: PlatformSpec,
        cores: int,
        config: KnativeConfig = KnativeConfig(),
        rng: Optional[Rng] = None,
        scaling_policy=None,
    ):
        # The parent's policy machinery is unused; pods are ours.
        super().__init__(env, spec, cores, policy=_NullPolicy(), rng=rng)
        self.config = config
        self.scaling_policy = scaling_policy or KpaScalingPolicy(config)
        self._pools: dict[str, _FunctionPool] = {}
        self.scale_ups = 0
        self.scale_downs = 0
        self.panic_entries = 0
        env.process(self._autoscaler_loop())

    # -- registration ----------------------------------------------------------

    def register_function(self, name, phases, memory_bytes=None) -> FunctionModel:
        function = super().register_function(name, phases, memory_bytes)
        self._pools[name] = _FunctionPool(function, self._memory_of(function))
        return function

    # -- pod lifecycle (overrides the generic acquire/release) ----------------------

    def _acquire(self, function: FunctionModel):
        pool = self._pools[function.name]
        pool.zero_since = None
        take_warm = self.scaling_policy.acquire_warm(
            SandboxSnapshot(self.env.now, function, len(pool.ready))
        )
        if take_warm and pool.ready:
            sandbox = pool.ready.pop()
            sandbox.busy = True
            pool.busy_count += 1
        else:
            # No ready pod (or the policy declined one): cold start.
            pool.busy_count += 1
            sandbox = None
        # Sample at arrival too, so bursts between evaluation ticks are
        # visible to the panic window.
        pool.samples.append((self.env.now, pool.busy_count))
        return sandbox, sandbox is None

    def _release(self, function: FunctionModel, sandbox, was_cold: bool):
        pool = self._pools[function.name]
        pool.busy_count -= 1
        if was_cold:
            # The cold start's pod finished booting (the generic request
            # path already created the Sandbox and charged its memory);
            # it now counts as provisioned capacity.
            pool.provisioned += 1
        assert sandbox is not None
        sandbox.busy = False
        pool.ready.append(sandbox)
        self._record_memory()
        # Reclamation is the autoscaler's decision, not a timer's.

    # -- the KPA loop --------------------------------------------------------------

    def _autoscaler_loop(self):
        config = self.config
        while True:
            yield self.env.timeout(config.evaluation_interval_seconds)
            now = self.env.now
            for pool in self._pools.values():
                pool.record(now, config.stable_window_seconds)
                choice = self.scaling_policy.decide(
                    pool.snapshot(
                        now,
                        config.stable_window_seconds,
                        config.panic_window_seconds,
                    )
                )
                if choice.in_panic:
                    self.panic_entries += 1
                desired = choice.desired_pods
                if desired > pool.current_pods:
                    self._scale_up(pool, desired - pool.current_pods)
                    pool.last_scale_down_vote = None
                elif desired < pool.current_pods:
                    self._maybe_scale_down(pool, desired, now, choice.in_panic)
                else:
                    pool.last_scale_down_vote = None

    def _scale_up(self, pool: _FunctionPool, count: int) -> None:
        """Pre-provision pods ahead of demand (the Knative behaviour
        that plain keep-alive lacks)."""
        for _ in range(count):
            sandbox = Sandbox(pool.function.name, pool.memory_bytes, created_at=self.env.now)
            sandbox.busy = False
            pool.ready.append(sandbox)
            self._dynamic_memory += sandbox.memory_bytes
            pool.provisioned += 1
            self.scale_ups += 1
        pool.desired = pool.current_pods
        self._record_memory()

    def _maybe_scale_down(self, pool: _FunctionPool, desired: int, now: float, in_panic: bool) -> None:
        if in_panic:
            pool.last_scale_down_vote = None
            return
        if pool.last_scale_down_vote is None:
            pool.last_scale_down_vote = now
            return
        hold = self.config.stable_window_seconds
        if desired == 0:
            hold += self.config.scale_to_zero_grace_seconds
        if now - pool.last_scale_down_vote < hold:
            return
        while pool.current_pods > desired and pool.ready:
            sandbox = pool.ready.pop(0)
            self._dynamic_memory -= sandbox.memory_bytes
            pool.provisioned -= 1
            self.scale_downs += 1
        if pool.current_pods == 0:
            pool.zero_since = now
        pool.last_scale_down_vote = None
        self._record_memory()

    # -- introspection --------------------------------------------------------------

    def pods_of(self, function_name: str) -> int:
        return self._pools[function_name].current_pods

    def ready_pods_of(self, function_name: str) -> int:
        return len(self._pools[function_name].ready)


class _NullPolicy(SandboxPolicy):
    """Placeholder satisfying the parent constructor; the platform
    overrides ``_acquire``/``_release`` so it is never consulted."""

    __slots__ = ()

    def decide(self, snapshot) -> SandboxChoice:  # pragma: no cover - unused
        return SandboxChoice("cold")

    def standing_sandboxes(self, function) -> int:
        return 0

    def keep_after_use(self) -> bool:  # pragma: no cover - unused
        return True
