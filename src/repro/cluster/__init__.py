"""Cluster-level orchestration: Dirigent-like manager over worker fleets."""

from .autoscaler import KnativeConfig, KnativeFaasPlatform
from .faults import WorkerFaultInjector
from .manager import ROUTING_POLICIES, ClusterManager

__all__ = [
    "KnativeConfig",
    "KnativeFaasPlatform",
    "ROUTING_POLICIES",
    "ClusterManager",
    "WorkerFaultInjector",
]
