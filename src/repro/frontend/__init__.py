"""HTTP frontend of a worker node."""

from .http_frontend import Frontend

__all__ = ["Frontend"]
