"""HTTP frontend — client-facing entry point of a worker node (§5).

"The frontend manages client communication, handling requests for
composition/function registration and invocation.  It forwards these
requests to the dispatcher and serializes and returns the final result
to the client."

The frontend exposes both a programmatic API (used by examples and
experiments) and an HTTP-message API (POST ``/v1/functions``,
``/v1/compositions``, ``/v1/invoke/<name>``) so a worker can itself be
registered as an :class:`~repro.net.network.HttpService` — which is how
compositions "spawn new compositions dynamically through Dandelion's
HTTP interface" (§4.1).
"""

from __future__ import annotations

import json
from typing import Optional

from ..composition.dsl import parse_composition
from ..composition.graph import Composition
from ..composition.registry import FunctionBinary, Registry
from ..data.items import DataItem, DataSet, is_data_set
from ..dispatcher.dispatcher import Dispatcher, InvocationResult
from ..net.http import HttpRequest, HttpResponse
from ..net.network import HttpService
from ..sim.core import Environment

__all__ = ["Frontend"]

# Modelled CPU cost of HTTP parsing/serialization at the frontend.
_FRONTEND_OVERHEAD_SECONDS = 30e-6


class Frontend(HttpService):
    """Client entry point: registration and invocation."""

    def __init__(self, env: Environment, registry: Registry, dispatcher: Dispatcher, host: str = "dandelion.internal"):
        super().__init__(host)
        self.env = env
        self.registry = registry
        self.dispatcher = dispatcher

    # -- programmatic API ---------------------------------------------------

    def register_function(
        self, binary: FunctionBinary, verify: Optional[str] = None
    ) -> None:
        """Register a function; ``verify="warn"|"strict"`` runs the
        static purity verifier at registration time (§4.1)."""
        self.registry.register_function(binary, verify=verify)

    def register_composition(
        self, composition_or_source, verify: Optional[str] = None
    ) -> Composition:
        """Register a Composition object or composition-language source;
        ``verify="warn"|"strict"`` runs the whole-composition dataflow
        analyzer (races, contracts, cost) at registration time."""
        if isinstance(composition_or_source, Composition):
            composition = composition_or_source
        else:
            composition = parse_composition(
                composition_or_source, library=self.registry.compositions
            )
        self.registry.register_composition(composition, verify=verify)
        return composition

    def invoke(self, composition_name: str, inputs: dict):
        """Invoke a composition; returns a process → InvocationResult.

        ``inputs`` maps external input names to DataSets, lists of
        DataItems, or raw bytes (wrapped as a single-item set).
        """
        normalized = {
            name: self._as_data_set(name, value) for name, value in inputs.items()
        }
        return self.env.process(self._invoke(composition_name, normalized))

    def _invoke(self, composition_name: str, inputs: dict[str, DataSet]):
        yield self.env.timeout(_FRONTEND_OVERHEAD_SECONDS)
        result = yield self.dispatcher.invoke(composition_name, inputs)
        yield self.env.timeout(_FRONTEND_OVERHEAD_SECONDS)
        return result

    @staticmethod
    def _as_data_set(name: str, value) -> DataSet:
        if is_data_set(value):
            return value
        if isinstance(value, (bytes, bytearray)):
            return DataSet(name, [DataItem(name, bytes(value))])
        if isinstance(value, str):
            return DataSet(name, [DataItem(name, value.encode("utf-8"))])
        return DataSet(name, list(value))

    # -- HTTP-message API -------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve registration/invocation over HTTP (synchronous paths).

        Invocation over HTTP is served through
        :meth:`handle_invoke_process` because it must wait on the
        dispatcher; plain ``handle`` only accepts registrations and
        returns 202 for invocations (poll-style), keeping the
        HttpService contract synchronous.
        """
        if request.method == "POST" and request.path.startswith("/v1/compositions"):
            verify = None
            if "?" in request.path:
                query = request.path.split("?", 1)[1]
                for pair in query.split("&"):
                    if pair.startswith("verify="):
                        verify = pair.split("=", 1)[1] or None
            try:
                composition = self.register_composition(
                    request.body.decode("utf-8"), verify=verify
                )
            except Exception as exc:  # noqa: BLE001 - surface as HTTP error
                return HttpResponse(status=400, reason=str(exc))
            return HttpResponse(status=201, body=composition.name.encode())
        if request.method == "POST" and request.path.startswith("/v1/invoke/"):
            name = request.path.split("/v1/invoke/", 1)[1].split("?")[0]
            if not self.registry.has_composition(name):
                return HttpResponse(status=404, reason=f"unknown composition {name!r}")
            return HttpResponse(status=202, body=b"accepted")
        return HttpResponse(status=404, reason="unknown endpoint")

    def handle_process(self, request: HttpRequest):
        """Generator handler driving full invocations in virtual time.

        Registering the frontend on a :class:`SimulatedNetwork` makes
        the worker itself reachable over HTTP, so compositions can
        spawn other compositions dynamically (§4.1): a communication
        function POSTs to ``/v1/invoke/<name>`` and receives the nested
        invocation's outputs.
        """
        if request.method == "POST" and "/v1/invoke/" in request.path:
            response = yield from self.handle_invoke_process(request)
            return response
        yield self.env.timeout(_FRONTEND_OVERHEAD_SECONDS)
        return self.handle(request)

    def handle_invoke_process(self, request: HttpRequest):
        """Simulation process serving a full HTTP invocation round trip."""
        name = request.path.split("/v1/invoke/", 1)[1].split("?")[0]
        if not self.registry.has_composition(name):
            return HttpResponse(status=404, reason=f"unknown composition {name!r}")
        try:
            payload = json.loads(request.body.decode("utf-8")) if request.body else {}
        except ValueError:
            return HttpResponse(status=400, reason="invalid JSON body")
        inputs = {
            key: DataSet(key, [DataItem(key, value.encode("utf-8"))])
            for key, value in payload.items()
        }
        result = yield self.invoke(name, inputs)
        return self.serialize_result(result)

    @staticmethod
    def serialize_result(result: InvocationResult) -> HttpResponse:
        if not result.ok:
            return HttpResponse(status=500, reason=str(result.error))
        body = json.dumps(
            {
                name: {item.ident: item.data.hex() for item in data_set}
                for name, data_set in result.outputs.items()
            }
        ).encode()
        return HttpResponse(status=200, body=body)
