"""Core-scheduling policies for the worker control plane (§5).

The paper's control plane periodically measures the growth rates of
the compute and communication engines' queues and uses a PI controller
to move one core at a time between the two engine types.  Here that
actuation decision is a policy over :class:`CoreSnapshot` views:
``decide(snapshot)`` returns ``+1`` (move a core from communication to
compute), ``-1`` (the reverse), or ``0`` — the
:class:`~repro.controlplane.allocator.CoreAllocator` enforces the
``min_cores`` floor and performs the actual engine grow/shrink.

:class:`PiCorePolicy` wraps the paper's PI controller;
:class:`StaticCorePolicy` never moves a core (a fixed split, the
ablation baseline Fig 7 compares against).  Alternative controllers —
deadline-aware, queueing-model-based — implement the same two-method
surface and slot straight into the allocator.
"""

from __future__ import annotations

from .snapshots import CoreSnapshot

__all__ = ["CorePolicy", "PiCorePolicy", "StaticCorePolicy", "CORE_POLICIES"]


class CorePolicy:
    """Base class: one core-reallocation decision per control epoch."""

    __slots__ = ()

    def decide(self, snapshot: CoreSnapshot) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear accumulated controller state (integral terms etc.)."""


class PiCorePolicy(CorePolicy):
    """The paper's Proportional-Integral controller as a core policy.

    The error signal is the difference of the two queues' growth rates;
    gains, deadband and anti-windup clamp come from
    :class:`~repro.controlplane.pi_controller.PiConfig`.  The wrapped
    :class:`~repro.controlplane.pi_controller.PiController` stays
    reachable as ``.controller`` for telemetry (last error/signal).
    """

    __slots__ = ("controller",)

    def __init__(self, config=None, controller=None):
        # Imported lazily: controlplane imports this module to build its
        # default policy, so a module-level import would be circular.
        from ..controlplane.pi_controller import PiConfig, PiController

        if controller is not None:
            self.controller = controller
        else:
            self.controller = PiController(config if config is not None else PiConfig())

    def decide(self, snapshot: CoreSnapshot) -> int:
        return self.controller.update(snapshot.compute_growth, snapshot.comm_growth)

    def reset(self) -> None:
        self.controller.reset()


class StaticCorePolicy(CorePolicy):
    """Never reallocates: the fixed compute/comm split baseline."""

    __slots__ = ()

    def decide(self, snapshot: CoreSnapshot) -> int:
        return 0


# Name registry: how scenario specs (repro.scenario) and config
# surfaces refer to core policies.  ``static`` disables the worker
# control plane; ``pi`` enables the paper's PI controller.
CORE_POLICIES = {
    "static": StaticCorePolicy,
    "pi": PiCorePolicy,
}
