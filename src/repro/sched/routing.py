"""Cluster routing policies (Dirigent-style load balancing, §5).

Each policy implements ``decide(ClusterSnapshot) -> worker index`` and
owns all of its mutable state — its rotation cursor, its RNG stream —
so policies compose: two clusters (or two policies on one cluster in a
benchmark harness) never perturb each other's decision streams.

Determinism rules (docs/scheduling.md): a policy's decisions must be a
pure function of (its constructor arguments, the sequence of snapshots
it has seen).  Seeded policies draw only from the :class:`Rng` they
were built with; tie-breaks are always by worker index, never by dict
or set order.

The legacy string names live in :data:`ROUTING_POLICIES`, a name→class
registry, so ``ClusterManager(policy="least_loaded")`` and every
existing experiment keep working unchanged.
"""

from __future__ import annotations

from typing import Optional

from .snapshots import ClusterSnapshot

__all__ = [
    "RoutingPolicy",
    "RoundRobin",
    "LeastOutstanding",
    "Random",
    "RandomRouting",
    "JSQ",
    "LocalityAware",
    "GrayFailureAware",
    "ROUTING_POLICIES",
    "make_routing_policy",
]

_INF = float("inf")


class RoutingPolicy:
    """Base class for cluster routing policies.

    ``decide`` returns the index of the worker to route to, or ``None``
    when no healthy worker exists.  ``build(rng)`` is the uniform
    constructor used by name-based lookup through
    :data:`ROUTING_POLICIES`; policies that need randomness receive the
    cluster's seeded :class:`~repro.sim.distributions.Rng`, the others
    ignore it.
    """

    __slots__ = ()

    #: registry key; subclasses override.
    name = "abstract"

    @classmethod
    def build(cls, rng) -> "RoutingPolicy":
        return cls()

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        raise NotImplementedError


def _least_outstanding_choice(snapshot: ClusterSnapshot, candidates) -> int:
    """Fewest in-flight invocations, ties broken by worker index.

    Runs once per routed invocation, so the scan indexes the snapshot's
    per-worker counters directly (the documented ``in_flight(i)``
    contract) instead of paying a key-function allocation per decision.
    """
    loads = snapshot._in_flight
    best = None
    best_load = None
    for index in candidates:
        load = loads[index]
        if best is None or load < best_load or (load == best_load and index < best):
            best = index
            best_load = load
    return best


class RoundRobin(RoutingPolicy):
    """Rotate over the stable worker-index ring, skipping unhealthy.

    The cursor advances over worker *indices* (0..worker_count-1), not
    over positions in the current healthy list: a fleet-size change or
    a worker failing/recovering therefore never shifts the phase of the
    rotation for the workers that stayed up.  (The legacy
    implementation took one shared counter modulo the current healthy
    count, so any membership change permanently skewed the rotation.)

    Quarantined workers are skipped the same way dead ones are; when
    the whole fleet is quarantined the rotation falls back to plain
    health so traffic still flows.
    """

    __slots__ = ("_cursor",)

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        count = snapshot.worker_count
        if count <= 0 or not snapshot.healthy:
            return None
        cursor = self._cursor
        for offset in range(count):
            index = (cursor + offset) % count
            if snapshot.is_routable(index):
                self._cursor = (index + 1) % count
                return index
        # Every healthy worker is quarantined: degrade to plain health.
        for offset in range(count):
            index = (cursor + offset) % count
            if snapshot.is_healthy(index):
                self._cursor = (index + 1) % count
                return index
        return None


class LeastOutstanding(RoutingPolicy):
    """Fewest in-flight invocations (Dirigent-style just-in-time
    placement); deterministic tie-break by worker index."""

    __slots__ = ()

    name = "least_loaded"

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        if not snapshot.healthy:
            return None
        return _least_outstanding_choice(snapshot, snapshot.candidates)


class RandomRouting(RoutingPolicy):
    """Seeded uniform choice over the routable (non-quarantined) workers."""

    __slots__ = ("rng",)

    name = "random"

    def __init__(self, rng):
        if rng is None:
            raise ValueError("RandomRouting requires a seeded Rng")
        self.rng = rng

    @classmethod
    def build(cls, rng) -> "RandomRouting":
        return cls(rng)

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        if not snapshot.healthy:
            return None
        return self.rng.choice(snapshot.candidates)


#: Alias matching the paper-facing policy name; ``RandomRouting`` is
#: the canonical class name so importers don't shadow ``random.Random``.
Random = RandomRouting


class JSQ(RoutingPolicy):
    """Join-the-shortest-of-d-queues (power-of-d-choices) sampling.

    Samples ``d`` distinct healthy workers from the seeded stream and
    routes to the least loaded of them, ties broken by index — the
    classic load-balancing result that two random choices already get
    exponentially close to least-loaded at a fraction of the state
    freshness requirements (Mitzenmacher '01).  With ``d`` at or above
    the healthy fleet size no sampling happens (and no RNG draw is
    consumed): the decision stream is identical to
    :class:`LeastOutstanding`, which the property tests pin.
    """

    __slots__ = ("rng", "d")

    name = "jsq"

    def __init__(self, rng, d: int = 2):
        if rng is None:
            raise ValueError("JSQ requires a seeded Rng")
        if d < 1:
            raise ValueError("JSQ needs d >= 1 samples")
        self.rng = rng
        self.d = d

    @classmethod
    def build(cls, rng) -> "JSQ":
        return cls(rng)

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        if not snapshot.healthy:
            return None
        pool = snapshot.candidates
        if self.d >= len(pool):
            return _least_outstanding_choice(snapshot, pool)
        sampled = self.rng.sample(pool, self.d)
        return _least_outstanding_choice(snapshot, sampled)


class LocalityAware(RoutingPolicy):
    """Prefer workers whose binary caches are warm for this composition,
    with a load-bounded spill.

    Scores each healthy worker by how many of the invoked composition's
    function binaries are already in its in-RAM binary cache (a warm
    worker skips the load-from-disk stage entirely, §7.2's dominant
    cold-start cost), then routes to the warmest; among equally warm
    workers the least loaded wins, then the lowest index.

    Pure cache affinity is a trap under skewed popularity: a hot
    composition would pin to the one worker that first loaded its
    binary and saturate it while the rest of the fleet idles.  So the
    preference is *bounded* (in the spirit of bounded-load consistent
    hashing): when the warmest candidate already carries
    ``spill_margin`` more in-flight invocations than the least-loaded
    healthy worker, the decision spills to plain least-outstanding
    instead.  The spill target cold-loads the binary once and becomes
    warm itself, so a popular composition's warm set grows exactly as
    fast as its load requires — rare compositions stay pinned to one
    cache, hot ones expand.

    A fleet with no warm worker degenerates to least-outstanding, so
    the first invocation of each composition seeds exactly one worker's
    cache and later traffic gravitates there — stateless task placement
    with cache affinity, without any pinned assignment to go stale.
    """

    __slots__ = ("spill_margin",)

    name = "locality"

    def __init__(self, spill_margin: int = 3):
        if spill_margin < 1:
            raise ValueError("spill_margin must be >= 1")
        self.spill_margin = spill_margin

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        if not snapshot.healthy:
            return None
        pool = snapshot.candidates
        if not snapshot.composition_functions:
            return _least_outstanding_choice(snapshot, pool)
        warm_count = snapshot.warm_count
        in_flight = snapshot.in_flight
        warmest = min(
            pool,
            key=lambda index: (-warm_count(index), in_flight(index), index),
        )
        if warm_count(warmest) == 0:
            return _least_outstanding_choice(snapshot, pool)
        lightest = min(in_flight(index) for index in pool)
        if in_flight(warmest) - lightest >= self.spill_margin:
            return _least_outstanding_choice(snapshot, pool)
        return warmest


class GrayFailureAware(RoutingPolicy):
    """Latency-quarantine routing with load-bounded spill-back.

    The fail-stop detectors behind ``snapshot.healthy`` only notice
    workers that *die*; a limplock worker (degraded disk/NIC, §6.1's
    gray-failure regime) stays in the healthy ring while serving every
    request several times slower.  This policy consumes the latency
    health the cluster manager maintains (EWMA scores + quarantine
    flags) and routes least-outstanding over the *preferred* ring —
    healthy and not quarantined.

    Two escape hatches keep a degraded fleet live and recoverable:

    * **All-quarantined fallback** — when every healthy worker is
      quarantined there is no good choice, only a least-bad one: route
      by (latency score, in-flight, index), so traffic keeps flowing
      through the least-degraded worker instead of stalling.
    * **Load-bounded spill-back** — quarantining shrinks the serving
      set, and a hot fleet can overload the survivors.  In the spirit
      of :class:`LocalityAware`'s bounded preference, when the chosen
      preferred worker already carries ``spill_margin`` more in-flight
      invocations than the lightest *healthy* worker, the decision
      spills back to least-outstanding over the full healthy ring.
      The spill doubles as the recovery probe: quarantined workers keep
      receiving a trickle of traffic, so their scores keep updating and
      a recovered worker re-earns its place.
    """

    __slots__ = ("spill_margin",)

    name = "gray"

    def __init__(self, spill_margin: int = 3):
        if spill_margin < 1:
            raise ValueError("spill_margin must be >= 1")
        self.spill_margin = spill_margin

    @staticmethod
    def _least_bad(snapshot: ClusterSnapshot, pool) -> int:
        """Lowest latency score, then load, then index; NaN scores last."""
        loads = snapshot._in_flight
        best = None
        best_key = None
        for index in pool:
            score = snapshot.latency_score(index)
            if score != score:  # NaN: no data, assume worst
                score = _INF
            key = (score, loads[index], index)
            if best is None or key < best_key:
                best = index
                best_key = key
        return best

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        healthy = snapshot.healthy
        if not healthy:
            return None
        preferred = snapshot.preferred
        if not preferred:
            return self._least_bad(snapshot, healthy)
        choice = _least_outstanding_choice(snapshot, preferred)
        if len(preferred) < len(healthy):
            loads = snapshot._in_flight
            lightest = min(loads[index] for index in healthy)
            if loads[choice] - lightest >= self.spill_margin:
                return _least_outstanding_choice(snapshot, healthy)
        return choice


#: Back-compat name→class registry.  The legacy tuple of policy names
#: (``"round_robin"``, ``"least_loaded"``, ``"random"``) became the
#: keys of this mapping, so ``policy in ROUTING_POLICIES`` and
#: ``ClusterManager(policy="...")`` behave exactly as before; the new
#: policies are reachable by the same route.
ROUTING_POLICIES: dict = {
    "round_robin": RoundRobin,
    "least_loaded": LeastOutstanding,
    "random": RandomRouting,
    "jsq": JSQ,
    "locality": LocalityAware,
    "gray": GrayFailureAware,
}


def make_routing_policy(policy, rng) -> RoutingPolicy:
    """Resolve a policy argument: a registered name or a policy object."""
    if isinstance(policy, RoutingPolicy):
        return policy
    if isinstance(policy, str):
        cls = ROUTING_POLICIES.get(policy)
        if cls is None:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of "
                f"{tuple(ROUTING_POLICIES)}"
            )
        return cls.build(rng)
    raise TypeError(
        f"policy must be a name or a RoutingPolicy, got {type(policy).__name__}"
    )
