"""Immutable snapshot views consumed by scheduling policies.

A snapshot is the *decision input* for one scheduling choice: a cheap,
read-only view of the relevant slice of system state.  Snapshots are
built on the hot path, so construction must be O(1) — the expensive
parts (the healthy-index ring, per-worker counters, warm-binary sets)
are references to state the owning subsystem maintains incrementally,
never copies.  Policies must treat every field as frozen: mutating a
snapshot (or the containers it references) is a contract violation and
would corrupt the subsystem that lent the view.

Snapshot types, one per decision point:

* :class:`ClusterSnapshot` — cluster-manager routing (§5): the healthy
  worker ring, per-worker in-flight counts, and warm-binary locality
  signals for the invoked composition;
* :class:`WorkerSnapshot` — a per-worker slice of the cluster view,
  materialized lazily for policies (and tests) that want one worker's
  state as a value;
* :class:`PoolSnapshot` — one function's pod pool as the Knative KPA
  sees it at an evaluation tick (windowed concurrency averages);
* :class:`SandboxSnapshot` — one baseline-platform request's
  hot/cold/reuse decision input;
* :class:`CoreSnapshot` — one control-plane epoch's queue growths and
  current core split.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ClusterSnapshot",
    "CoreSnapshot",
    "PoolSnapshot",
    "SandboxSnapshot",
    "WorkerSnapshot",
]

_EMPTY_SET: frozenset = frozenset()

_NAN = float("nan")


class WorkerSnapshot:
    """Read-only view of one worker at decision time."""

    __slots__ = (
        "index",
        "healthy",
        "in_flight",
        "warm_functions",
        "latency_ewma",
        "quarantined",
    )

    def __init__(self, index: int, healthy: bool, in_flight: int,
                 warm_functions: frozenset,
                 latency_ewma: float = _NAN,
                 quarantined: bool = False):
        self.index = index
        self.healthy = healthy
        self.in_flight = in_flight
        self.warm_functions = warm_functions
        self.latency_ewma = latency_ewma
        self.quarantined = quarantined

    def __repr__(self) -> str:
        return (
            f"WorkerSnapshot(index={self.index}, healthy={self.healthy}, "
            f"in_flight={self.in_flight}, warm={len(self.warm_functions)}, "
            f"quarantined={self.quarantined})"
        )


class ClusterSnapshot:
    """Routing view over a worker fleet.

    ``healthy`` is the *shared* tuple of healthy worker indices the
    cluster manager maintains incrementally on fail/restore/add — the
    fault-free fast path hands the same tuple to every decision, so
    building a snapshot is one small allocation, not an O(workers)
    scan.  ``worker_count`` is the total fleet size (the stable index
    ring policies rotate over); unhealthy indices stay in the ring so
    a fleet-size change cannot shift a rotation's phase.

    The gray-failure extension adds three optional, equally-shared
    references: ``preferred`` (healthy AND not latency-quarantined —
    another incrementally-maintained ring), ``scores`` (per-worker
    completion-latency EWMAs) and ``quarantined`` (per-worker flags).
    Deployments without a health tracker leave them at their defaults
    and every policy behaves exactly as before: ``candidates`` falls
    back to ``healthy``.
    """

    __slots__ = (
        "healthy",
        "worker_count",
        "composition",
        "composition_functions",
        "_health",
        "_in_flight",
        "_warm_of",
        "preferred",
        "_scores",
        "_quarantined",
    )

    def __init__(
        self,
        healthy: tuple,
        worker_count: int,
        health,
        in_flight,
        composition: Optional[str] = None,
        composition_functions: tuple = (),
        warm_of=None,
        preferred: Optional[tuple] = None,
        scores=None,
        quarantined=None,
    ):
        self.healthy = healthy
        self.worker_count = worker_count
        self.composition = composition
        self.composition_functions = composition_functions
        self._health = health
        self._in_flight = in_flight
        self._warm_of = warm_of
        self.preferred = healthy if preferred is None else preferred
        self._scores = scores
        self._quarantined = quarantined

    @property
    def candidates(self) -> tuple:
        """Indices policies should route to: preferred, else the
        least-bad fallback (every healthy worker) when the whole fleet
        is quarantined — a degraded fleet must still take traffic."""
        return self.preferred or self.healthy

    def is_healthy(self, index: int) -> bool:
        return self._health[index]

    def is_quarantined(self, index: int) -> bool:
        """True when latency-based health has sidelined this worker."""
        if self._quarantined is None:
            return False
        return self._quarantined.get(index, False)

    def is_routable(self, index: int) -> bool:
        """Healthy and not quarantined."""
        return self._health[index] and not self.is_quarantined(index)

    def latency_score(self, index: int) -> float:
        """Completion-latency EWMA for the worker (NaN when unknown)."""
        if self._scores is None:
            return _NAN
        return self._scores.get(index, _NAN)

    def in_flight(self, index: int) -> int:
        return self._in_flight[index]

    def warm_functions(self, index: int):
        """Set of function binaries warm (RAM-cached) on this worker."""
        if self._warm_of is None:
            return _EMPTY_SET
        return self._warm_of(index)

    def warm_count(self, index: int) -> int:
        """How many of the invoked composition's functions are warm."""
        functions = self.composition_functions
        if not functions:
            return 0
        warm = self.warm_functions(index)
        if not warm:
            return 0
        return sum(1 for name in functions if name in warm)

    def worker(self, index: int) -> WorkerSnapshot:
        """Materialize one worker's slice as a value (not hot path)."""
        return WorkerSnapshot(
            index,
            self.is_healthy(index),
            self.in_flight(index),
            frozenset(self.warm_functions(index)),
            self.latency_score(index),
            self.is_quarantined(index),
        )

    def __repr__(self) -> str:
        return (
            f"ClusterSnapshot({len(self.healthy)}/{self.worker_count} healthy, "
            f"composition={self.composition!r})"
        )


class PoolSnapshot:
    """One function's pod pool as the autoscaler sees it at a tick."""

    __slots__ = (
        "function_name",
        "now",
        "ready",
        "busy",
        "provisioned",
        "stable_concurrency",
        "panic_concurrency",
    )

    def __init__(
        self,
        function_name: str,
        now: float,
        ready: int,
        busy: int,
        provisioned: int,
        stable_concurrency: float,
        panic_concurrency: float,
    ):
        self.function_name = function_name
        self.now = now
        self.ready = ready
        self.busy = busy
        self.provisioned = provisioned
        self.stable_concurrency = stable_concurrency
        self.panic_concurrency = panic_concurrency

    def __repr__(self) -> str:
        return (
            f"PoolSnapshot({self.function_name!r}, ready={self.ready}, "
            f"busy={self.busy}, provisioned={self.provisioned}, "
            f"stable={self.stable_concurrency:.2f}, "
            f"panic={self.panic_concurrency:.2f})"
        )


class SandboxSnapshot:
    """One baseline request's sandbox-acquisition decision input."""

    __slots__ = ("now", "function", "idle_count")

    def __init__(self, now: float, function, idle_count: int):
        self.now = now
        self.function = function
        self.idle_count = idle_count

    def __repr__(self) -> str:
        name = getattr(self.function, "name", self.function)
        return f"SandboxSnapshot({name!r}, idle={self.idle_count}, now={self.now})"


class CoreSnapshot:
    """One control-plane epoch's view of both engine groups."""

    __slots__ = (
        "now",
        "compute_queue",
        "comm_queue",
        "compute_growth",
        "comm_growth",
        "compute_cores",
        "comm_cores",
        "min_cores",
    )

    def __init__(
        self,
        now: float,
        compute_queue: int,
        comm_queue: int,
        compute_growth: float,
        comm_growth: float,
        compute_cores: int,
        comm_cores: int,
        min_cores: int = 1,
    ):
        self.now = now
        self.compute_queue = compute_queue
        self.comm_queue = comm_queue
        self.compute_growth = compute_growth
        self.comm_growth = comm_growth
        self.compute_cores = compute_cores
        self.comm_cores = comm_cores
        self.min_cores = min_cores

    def __repr__(self) -> str:
        return (
            f"CoreSnapshot(compute={self.compute_cores}c/q{self.compute_queue}, "
            f"comm={self.comm_cores}c/q{self.comm_queue})"
        )
