"""Unified pluggable scheduling layer (`repro.sched`).

Dandelion's elasticity rests on fast, explicit scheduling decisions at
every layer of the stack — cluster routing (§5), engine queueing,
sandbox pooling (§7 baselines), and PI-controlled core reallocation
(§5).  This package makes each of those decision points a first-class
*policy object* over immutable, cheaply-built snapshot views, so that
alternative schedulers (power-of-d-choices, locality-aware routing,
different core controllers) can be slotted in and benchmarked without
touching the subsystems they steer.

The contract is deliberately small (see docs/scheduling.md):

* a **snapshot** is a read-only view of the decision inputs, built in
  O(1) on the hot path (shared tuples are maintained incrementally by
  the subsystem that owns the state);
* a **policy** implements ``decide(snapshot) -> choice`` and owns all
  of its mutable state (cursors, RNG streams), so two policies never
  interfere and a policy's decision stream is reproducible from its
  seed;
* the **subsystem actuates** the returned choice — policies never
  mutate the system themselves.

Decision points and their policy families:

=====================  =============================  ======================
decision point         snapshot                       policies
=====================  =============================  ======================
cluster routing        :class:`ClusterSnapshot`       :data:`ROUTING_POLICIES`
KPA pod scaling        :class:`PoolSnapshot`          :class:`KpaScalingPolicy`
baseline sandboxes     :class:`SandboxSnapshot`       :class:`FixedHotRatioPolicy`,
                                                      :class:`KeepAlivePolicy`
core reallocation      :class:`CoreSnapshot`          :class:`PiCorePolicy`,
                                                      :class:`StaticCorePolicy`
=====================  =============================  ======================
"""

from .cores import CorePolicy, CORE_POLICIES, PiCorePolicy, StaticCorePolicy
from .hints import CostAware, StaticHints
from .routing import (
    JSQ,
    GrayFailureAware,
    LeastOutstanding,
    LocalityAware,
    RandomRouting,
    RoundRobin,
    RoutingPolicy,
    ROUTING_POLICIES,
    make_routing_policy,
)
from .sandbox import (
    FixedHotRatioPolicy,
    KeepAlivePolicy,
    SandboxChoice,
    SandboxPolicy,
)
from .scaling import KpaScalingPolicy, SCALING_POLICIES, ScaleChoice
from .snapshots import (
    ClusterSnapshot,
    CoreSnapshot,
    PoolSnapshot,
    SandboxSnapshot,
    WorkerSnapshot,
)

__all__ = [
    "ClusterSnapshot",
    "CORE_POLICIES",
    "CorePolicy",
    "CoreSnapshot",
    "CostAware",
    "FixedHotRatioPolicy",
    "GrayFailureAware",
    "JSQ",
    "KeepAlivePolicy",
    "KpaScalingPolicy",
    "LeastOutstanding",
    "LocalityAware",
    "PiCorePolicy",
    "PoolSnapshot",
    "RandomRouting",
    "RoundRobin",
    "RoutingPolicy",
    "ROUTING_POLICIES",
    "SCALING_POLICIES",
    "SandboxChoice",
    "SandboxPolicy",
    "SandboxSnapshot",
    "ScaleChoice",
    "StaticCorePolicy",
    "StaticHints",
    "WorkerSnapshot",
    "make_routing_policy",
]
