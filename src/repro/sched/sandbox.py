"""Sandbox keep/hot policies for the baseline FaaS platforms (§7.1).

The traditional-FaaS baselines make one scheduling decision per
request: serve it from a warm sandbox or pay a cold start, and — after
the request — keep the sandbox standing or tear it down.  Both halves
route through ``decide(SandboxSnapshot) -> SandboxChoice`` here; the
platform actuates the choice (scanning its idle pool, charging memory,
arming reap timers).

Two policies cover the paper's setups:

* :class:`FixedHotRatioPolicy` — each request is *hot* with fixed
  probability (the 97%-hot setting justified by the Azure trace, §7.3);
  the platform keeps a standing hot pool and tears down cold sandboxes
  after use;
* :class:`KeepAlivePolicy` — requests reuse idle sandboxes; sandboxes
  idle for a keep-alive window before reclamation (the
  Knative-autoscaling memory behaviour of Figs 1 and 10).

Both keep their pre-refactor helper surface (``standing_sandboxes``,
``keep_after_use``, ``is_hot``) so existing call sites and tests are
untouched.
"""

from __future__ import annotations

from .snapshots import SandboxSnapshot

__all__ = [
    "SandboxChoice",
    "SandboxPolicy",
    "FixedHotRatioPolicy",
    "KeepAlivePolicy",
]

# Choice kinds.
HOT = "hot"        # serve from the standing hot pool (no sandbox object)
COLD = "cold"      # boot a fresh sandbox on the critical path
REUSE = "reuse"    # scan the idle pool; cold start only if it is empty


class SandboxChoice:
    """Outcome of one sandbox-acquisition decision."""

    __slots__ = ("kind", "keep_alive_seconds")

    def __init__(self, kind: str, keep_alive_seconds: float = 0.0):
        self.kind = kind
        self.keep_alive_seconds = keep_alive_seconds

    def __repr__(self) -> str:
        return f"SandboxChoice({self.kind!r}, keep_alive={self.keep_alive_seconds})"


# The choice objects are stateless per kind, so the platform hot path
# reuses singletons instead of allocating one per request.
_HOT_CHOICE = SandboxChoice(HOT)
_COLD_CHOICE = SandboxChoice(COLD)


class SandboxPolicy:
    """Base class: per-request hot/cold/reuse decisions."""

    __slots__ = ()

    def decide(self, snapshot: SandboxSnapshot) -> SandboxChoice:
        raise NotImplementedError

    # -- legacy helper surface (pre-refactor call sites) -------------------

    def standing_sandboxes(self, function) -> int:
        """Pre-provisioned sandboxes to charge at registration."""
        return 0

    def keep_after_use(self) -> bool:
        """Whether released sandboxes stay warm (idle pool)."""
        return False


class FixedHotRatioPolicy(SandboxPolicy):
    """Bernoulli hot/cold decision with a standing hot pool.

    Hot requests are assumed to find a pre-provisioned sandbox (the
    platform keeps ``hot_pool_size`` of them in memory per function);
    cold requests boot a fresh sandbox that is torn down afterwards.
    """

    __slots__ = ("hot_ratio", "rng", "hot_pool_size")

    def __init__(self, hot_ratio: float, rng, hot_pool_size: int = 8):
        if not 0.0 <= hot_ratio <= 1.0:
            raise ValueError(f"hot_ratio {hot_ratio} out of range")
        self.hot_ratio = hot_ratio
        self.rng = rng
        self.hot_pool_size = hot_pool_size

    def decide(self, snapshot: SandboxSnapshot) -> SandboxChoice:
        return _HOT_CHOICE if self.rng.bernoulli(self.hot_ratio) else _COLD_CHOICE

    def standing_sandboxes(self, function) -> int:
        return self.hot_pool_size if self.hot_ratio > 0 else 0

    def is_hot(self, platform, function) -> bool:
        return self.rng.bernoulli(self.hot_ratio)

    def keep_after_use(self) -> bool:
        return False


class KeepAlivePolicy(SandboxPolicy):
    """Sandboxes idle for ``keep_alive_seconds`` before being reclaimed.

    This is the Knative-style autoscaling behaviour: every request that
    finds an idle sandbox is warm; idle sandboxes hold memory until the
    keep-alive window elapses.
    """

    __slots__ = ("keep_alive_seconds", "_choice")

    def __init__(self, keep_alive_seconds: float):
        if keep_alive_seconds < 0:
            raise ValueError("keep_alive_seconds must be non-negative")
        self.keep_alive_seconds = keep_alive_seconds
        self._choice = SandboxChoice(REUSE, keep_alive_seconds)

    def decide(self, snapshot: SandboxSnapshot) -> SandboxChoice:
        return self._choice

    def standing_sandboxes(self, function) -> int:
        return 0

    def keep_after_use(self) -> bool:
        return self.keep_alive_seconds > 0
