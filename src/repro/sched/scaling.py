"""Pod-scaling policy for the Knative-style autoscaler (§7.8).

Knative's KPA scales each revision on *observed concurrency*: desired
pods = ceil(average concurrency / per-pod target), smoothed over a
stable window, with a short panic window taking over when load doubles.
:class:`KpaScalingPolicy` carries exactly that arithmetic as a policy
object over :class:`~repro.sched.snapshots.PoolSnapshot` views, so the
platform (:class:`~repro.cluster.autoscaler.KnativeFaasPlatform`) only
actuates — creating pre-provisioned pods, voting scale-downs through
the grace period — and an alternative controller (e.g. a queueing-model
or RPS-based scaler) can be slotted in without touching the pod
lifecycle.
"""

from __future__ import annotations

import math

from .snapshots import PoolSnapshot, SandboxSnapshot

__all__ = ["ScaleChoice", "KpaScalingPolicy", "SCALING_POLICIES"]


class ScaleChoice:
    """One evaluation tick's verdict for one function's pod pool."""

    __slots__ = ("desired_pods", "in_panic")

    def __init__(self, desired_pods: int, in_panic: bool):
        self.desired_pods = desired_pods
        self.in_panic = in_panic

    def __repr__(self) -> str:
        return f"ScaleChoice(desired={self.desired_pods}, panic={self.in_panic})"


class KpaScalingPolicy:
    """Knative KPA concurrency-based scaling over pool snapshots.

    ``config`` is a :class:`~repro.cluster.autoscaler.KnativeConfig`
    (duck-typed: any object with ``target_concurrency``,
    ``panic_threshold`` and ``max_pods_per_function``).
    """

    __slots__ = ("config",)

    def __init__(self, config):
        self.config = config

    def decide(self, snapshot: PoolSnapshot) -> ScaleChoice:
        config = self.config
        capacity = max(snapshot.provisioned, 1) * config.target_concurrency
        in_panic = snapshot.panic_concurrency >= config.panic_threshold * capacity
        observed = (
            max(snapshot.stable_concurrency, snapshot.panic_concurrency)
            if in_panic
            else snapshot.stable_concurrency
        )
        desired = min(
            config.max_pods_per_function,
            math.ceil(observed / config.target_concurrency),
        )
        return ScaleChoice(desired, in_panic)

    def acquire_warm(self, snapshot: SandboxSnapshot) -> bool:
        """Whether an arriving request should take a ready pod.

        The KPA always prefers warm capacity; a policy modelling, say,
        per-pod draining could decline and force a cold start.
        """
        return snapshot.idle_count > 0


# Name registry: how scenario specs (repro.scenario) and config
# surfaces refer to pod-scaling policies.  ``none`` leaves the fleet
# at its spec'd size (every synthetic scenario today); ``kpa`` is the
# Knative autoscaler used by the FaaS-baseline replay path.
SCALING_POLICIES = {
    "none": None,
    "kpa": KpaScalingPolicy,
}
