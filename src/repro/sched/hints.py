"""Static scheduling hints from the dataflow cost analysis.

The dataflow analyzer (:mod:`repro.analysis.dataflow`) distills every
composition into a :class:`~repro.analysis.dataflow.
CompositionCostSummary` — critical-path seconds, max parallel width,
peak in-flight bytes — *before* a single invocation runs.  This module
is the consumption side: :class:`StaticHints` stores summaries by
composition name, and :class:`CostAware` is a routing policy that uses
them for width-aware placement (Funky-style device-aware orchestration
needs exactly this shape of per-stage static summary; see PAPERS.md).

The placement rule is deterministic bin packing:

- **Wide** compositions (static ``max_parallel_width`` at or above the
  threshold, or statically unbounded fan-out) bring their own
  parallelism; they route least-outstanding so their instances land on
  the emptiest worker.
- **Narrow** compositions (sequential chains) cannot use a whole idle
  worker; they *pack* onto the most-loaded routable worker that still
  has headroom (``pack_limit``), keeping empty workers free for wide
  work.  When every candidate is at the limit the policy degrades to
  least-outstanding, so packing never overloads.

``ClusterManager.register_composition`` feeds summaries to any policy
exposing ``ingest_summary`` — no coupling from the sched layer back
into the analysis package unless the policy is actually used.
"""

from __future__ import annotations

from typing import Optional

from .routing import ROUTING_POLICIES, RoutingPolicy, _least_outstanding_choice
from .snapshots import ClusterSnapshot

__all__ = ["StaticHints", "CostAware"]


class StaticHints:
    """Cost summaries by composition name (the policy's memory)."""

    __slots__ = ("_summaries",)

    def __init__(self):
        self._summaries: dict = {}

    def ingest(self, summary) -> None:
        self._summaries[summary.composition] = summary

    def get(self, composition_name):
        return self._summaries.get(composition_name)

    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, composition_name) -> bool:
        return composition_name in self._summaries


class CostAware(RoutingPolicy):
    """Width-aware bin packing over static cost summaries.

    Decisions are a pure function of (constructor arguments, ingested
    summaries, snapshot sequence): no RNG draw, ties broken by worker
    index, per the determinism rules in docs/scheduling.md.
    """

    __slots__ = ("hints", "wide_width", "pack_limit")

    name = "cost"

    def __init__(
        self,
        hints: Optional[StaticHints] = None,
        wide_width: int = 4,
        pack_limit: int = 8,
    ):
        if wide_width < 1:
            raise ValueError("wide_width must be >= 1")
        if pack_limit < 1:
            raise ValueError("pack_limit must be >= 1")
        self.hints = hints if hints is not None else StaticHints()
        self.wide_width = wide_width
        self.pack_limit = pack_limit

    # ClusterManager.register_composition probes for this method (duck
    # typed, getattr) and feeds every registered composition's summary.
    def ingest_summary(self, summary) -> None:
        self.hints.ingest(summary)

    def _is_wide(self, summary) -> bool:
        if summary is None:
            return True  # no hint: assume wide, spread conservatively
        if not summary.statically_bounded:
            return True  # unbounded fan-out: width is a lower bound
        return summary.max_parallel_width >= self.wide_width

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        if not snapshot.healthy:
            return None
        pool = snapshot.candidates
        summary = self.hints.get(snapshot.composition)
        if self._is_wide(summary):
            return _least_outstanding_choice(snapshot, pool)
        # Narrow chain: pack onto the most-loaded worker with headroom.
        loads = snapshot._in_flight
        best = None
        best_load = None
        for index in pool:
            load = loads[index]
            if load >= self.pack_limit:
                continue
            if best is None or load > best_load or (load == best_load and index < best):
                best = index
                best_load = load
        if best is None:
            return _least_outstanding_choice(snapshot, pool)
        return best


# Registered here rather than in routing.py so the analysis-facing
# policy stays out of routing's import graph; the package __init__
# imports this module, and importing ``repro.sched.routing`` runs the
# package __init__ first, so name-based lookup always finds "cost".
ROUTING_POLICIES["cost"] = CostAware
