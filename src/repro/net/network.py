"""Simulated data-centre network and service registry.

External services (cloud storage, auth, LLM inference, databases) run
in-process but are reached through a latency-modelled network, so that
communication functions experience realistic request/response timing
while producing real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.core import Environment
from .http import HttpRequest, HttpResponse

__all__ = ["LatencyModel", "SimulatedNetwork", "HttpService"]


@dataclass(frozen=True)
class LatencyModel:
    """Two-parameter intra-DC network model: RTT plus bandwidth."""

    round_trip_seconds: float = 200e-6       # same-AZ TCP round trip
    bytes_per_second: float = 1.25e9         # ~10 Gbit/s

    def transfer_seconds(self, payload_bytes: int) -> float:
        return payload_bytes / self.bytes_per_second

    def request_seconds(self, request: HttpRequest) -> float:
        """Time for the request to reach the service (half RTT + send)."""
        return self.round_trip_seconds / 2 + self.transfer_seconds(request.size)

    def response_seconds(self, response: HttpResponse) -> float:
        return self.round_trip_seconds / 2 + self.transfer_seconds(response.size)


class HttpService:
    """Base class for simulated remote services.

    Subclasses implement :meth:`handle` (the functional behaviour —
    real request in, real response out) and may override
    :meth:`service_seconds` (the modelled server-side processing time).
    """

    def __init__(self, host: str):
        if not host:
            raise ValueError("service host must be non-empty")
        self.host = host
        self.requests_served = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        raise NotImplementedError

    def service_seconds(self, request: HttpRequest, response: HttpResponse) -> float:
        """Modelled processing time; default scales with response size."""
        return 50e-6 + response.size / 5e9

    def _count(self) -> None:
        self.requests_served += 1


class SimulatedNetwork:
    """Routes HTTP requests to registered services with modelled latency."""

    def __init__(self, env: Environment, latency: LatencyModel = LatencyModel()):
        self.env = env
        self.latency = latency
        self._services: dict[str, HttpService] = {}
        self.requests_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def register(self, service: HttpService) -> None:
        if service.host in self._services:
            raise ValueError(f"host {service.host!r} already registered")
        self._services[service.host] = service

    def service(self, host: str) -> HttpService:
        try:
            return self._services[host]
        except KeyError:
            raise KeyError(f"no service registered for host {host!r}") from None

    @property
    def hosts(self) -> list[str]:
        return sorted(self._services)

    def perform(self, request: HttpRequest):
        """Simulation process carrying out one HTTP exchange.

        Yields timeouts for network and service time, then returns the
        :class:`HttpResponse`.  Unknown hosts return a 502 response
        after one RTT (connection refused), mirroring how the real
        communication function surfaces unreachable services as errors
        rather than crashing the engine.

        Services that define a generator method ``handle_process``
        (e.g. a Dandelion worker frontend serving a full invocation)
        are driven in virtual time instead of the synchronous
        ``handle`` + fixed service-time model — this is what lets
        compositions "spawn new compositions dynamically through
        Dandelion's HTTP interface" (§4.1).
        """
        self.requests_sent += 1
        self.bytes_sent += request.size
        service = self._services.get(request.host)
        if service is None:
            yield self.env.timeout(self.latency.round_trip_seconds)
            return HttpResponse(status=502, reason=f"no route to host {request.host!r}")
        yield self.env.timeout(self.latency.request_seconds(request))
        handler_process = getattr(service, "handle_process", None)
        if handler_process is not None:
            response = yield self.env.process(handler_process(request))
            service._count()
        else:
            response = service.handle(request)
            service._count()
            yield self.env.timeout(service.service_seconds(request, response))
        yield self.env.timeout(self.latency.response_seconds(response))
        self.bytes_received += response.size
        return response

    def perform_kv(self, host: str, op: str, key: str, value: bytes):
        """Carry out one key-value exchange over the TCP-style protocol.

        Returns ``(status, value_bytes, reason)``.  Targets services
        exposing :meth:`handle_kv` (see :mod:`repro.net.kv`); other
        services — or unknown hosts — yield a 502 after one RTT.
        """
        self.requests_sent += 1
        request_bytes = len(key) + len(value) + 16
        self.bytes_sent += request_bytes
        service = self._services.get(host)
        handle_kv = getattr(service, "handle_kv", None)
        if handle_kv is None:
            yield self.env.timeout(self.latency.round_trip_seconds)
            return 502, b"", f"no kv service at host {host!r}"
        yield self.env.timeout(
            self.latency.round_trip_seconds / 2
            + self.latency.transfer_seconds(request_bytes)
        )
        status, response_value, reason = handle_kv(op, key, value)
        service._count()
        yield self.env.timeout(service.service_seconds(len(response_value)))
        yield self.env.timeout(
            self.latency.round_trip_seconds / 2
            + self.latency.transfer_seconds(len(response_value) + 16)
        )
        self.bytes_received += len(response_value) + 16
        return status, response_value, reason
