"""Simulated remote services used by the paper's applications.

These stand in for the cloud endpoints the evaluation talks to: an
S3-like object store (§7.4 fetch-and-compute, §7.7 SSB ingest), the
authentication and log-shard services of the distributed log-processing
application (Fig 3), an LLM inference endpoint and a SQL database for
the Text2SQL agentic workflow (§7.7).

Each service is functional — real bytes in, real bytes out — with a
modelled server-side processing time.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from .http import HttpRequest, HttpResponse
from .network import HttpService

__all__ = [
    "ObjectStoreService",
    "AuthService",
    "LogShardService",
    "LlmService",
    "SqlDatabaseService",
    "EchoService",
]


class ObjectStoreService(HttpService):
    """An S3-like bucket: GET/PUT/DELETE on ``/<bucket>/<key>`` paths."""

    def __init__(self, host: str = "storage.internal"):
        super().__init__(host)
        self._objects: dict[str, bytes] = {}

    def put_object(self, bucket: str, key: str, data: bytes) -> None:
        """Server-side helper to preload data (no network cost)."""
        self._objects[f"/{bucket}/{key}"] = bytes(data)

    def get_object(self, bucket: str, key: str) -> bytes:
        return self._objects[f"/{bucket}/{key}"]

    def object_count(self) -> int:
        return len(self._objects)

    def handle(self, request: HttpRequest) -> HttpResponse:
        path = request.path.split("?")[0]
        if request.method == "GET":
            data = self._objects.get(path)
            if data is None:
                return HttpResponse(status=404, reason="no such object")
            return HttpResponse(status=200, body=data)
        if request.method == "PUT":
            self._objects[path] = request.body
            return HttpResponse(status=200)
        if request.method == "DELETE":
            if path in self._objects:
                del self._objects[path]
                return HttpResponse(status=204)
            return HttpResponse(status=404, reason="no such object")
        return HttpResponse(status=405, reason="method not allowed")

    def service_seconds(self, request: HttpRequest, response: HttpResponse) -> float:
        # First-byte latency plus streaming at S3-like per-connection
        # bandwidth (~40 MB/s for a single GET).
        payload = len(response.body) or len(request.body)
        return 8e-3 + payload / 4e7


class AuthService(HttpService):
    """Token-to-endpoints authorization service (log-processing app).

    POST ``/authorize`` with a token body returns the JSON list of log
    shard URLs the token may read.
    """

    def __init__(self, host: str = "auth.internal", tokens: Optional[dict[str, list[str]]] = None):
        super().__init__(host)
        self._tokens = dict(tokens or {})

    def grant(self, token: str, endpoints: list[str]) -> None:
        self._tokens[token] = list(endpoints)

    def handle(self, request: HttpRequest) -> HttpResponse:
        if request.method != "POST" or not request.path.startswith("/authorize"):
            return HttpResponse(status=404, reason="unknown endpoint")
        token = request.body.decode("utf-8", errors="replace").strip()
        endpoints = self._tokens.get(token)
        if endpoints is None:
            return HttpResponse(status=403, reason="invalid token")
        return HttpResponse(status=200, body=json.dumps(endpoints).encode())

    def service_seconds(self, request: HttpRequest, response: HttpResponse) -> float:
        return 500e-6  # token lookup


class LogShardService(HttpService):
    """Serves log lines for one shard of the distributed log store.

    ``base_latency_seconds`` models the storage server's time to locate
    and read the shard (the paper's log services are remote storage
    servers, so fetches dominate the app's ~28 ms latency).
    """

    def __init__(self, host: str, lines: list[str], base_latency_seconds: float = 1e-3):
        super().__init__(host)
        self._lines = list(lines)
        self.base_latency_seconds = base_latency_seconds

    @property
    def line_count(self) -> int:
        return len(self._lines)

    def handle(self, request: HttpRequest) -> HttpResponse:
        if request.method != "GET":
            return HttpResponse(status=405, reason="method not allowed")
        body = "\n".join(self._lines).encode()
        return HttpResponse(status=200, body=body)

    def service_seconds(self, request: HttpRequest, response: HttpResponse) -> float:
        return self.base_latency_seconds + len(response.body) / 2e9


class LlmService(HttpService):
    """A mock LLM inference endpoint for the Text2SQL workflow (§7.7).

    The paper runs Gemma-3-4b on an H100 and measures 1238 ms for the
    inference step; the mock reproduces that latency and produces a
    deterministic, template-based Text2SQL completion so the pipeline's
    downstream stages have real work to do.
    """

    DEFAULT_LATENCY_SECONDS = 1.238

    def __init__(
        self,
        host: str = "llm.internal",
        latency_seconds: float = DEFAULT_LATENCY_SECONDS,
        completion_fn: Optional[Callable[[str], str]] = None,
    ):
        super().__init__(host)
        self.latency_seconds = latency_seconds
        self._completion_fn = completion_fn or _default_text2sql_completion

    def handle(self, request: HttpRequest) -> HttpResponse:
        if request.method != "POST":
            return HttpResponse(status=405, reason="method not allowed")
        try:
            payload = json.loads(request.body.decode("utf-8"))
            prompt = payload["prompt"]
        except (ValueError, KeyError):
            return HttpResponse(status=400, reason="expected JSON body with 'prompt'")
        completion = self._completion_fn(prompt)
        body = json.dumps({"completion": completion}).encode()
        return HttpResponse(status=200, body=body)

    def service_seconds(self, request: HttpRequest, response: HttpResponse) -> float:
        return self.latency_seconds


def _default_text2sql_completion(prompt: str) -> str:
    """Turn a natural-language question into SQL, template-style.

    Recognises the shapes used by the Text2SQL example; everything else
    gets a generic SELECT so the pipeline still completes.
    """
    lowered = prompt.lower()
    table = "movies"
    for candidate in ("movies", "customers", "orders", "films"):
        if candidate in lowered:
            table = candidate
            break
    if "how many" in lowered or "count" in lowered:
        sql = f"SELECT COUNT(*) AS n FROM {table}"
    elif "average" in lowered or "mean" in lowered:
        sql = f"SELECT AVG(rating) AS avg_rating FROM {table}"
    elif "highest" in lowered or "top" in lowered or "best" in lowered:
        sql = f"SELECT title, rating FROM {table} ORDER BY rating DESC LIMIT 5"
    else:
        sql = f"SELECT * FROM {table} LIMIT 10"
    return f"```sql\n{sql}\n```"


class SqlDatabaseService(HttpService):
    """A SQL-over-HTTP database endpoint (SQLite stand-in for §7.7).

    The query execution itself is delegated to an ``executor`` callable
    (the mini SQL engine in :mod:`repro.query.sql` provides one), which
    receives the SQL text and returns rows as a list of dicts.
    """

    def __init__(self, host: str = "db.internal", executor: Optional[Callable[[str], list[dict]]] = None):
        super().__init__(host)
        if executor is None:
            raise ValueError("SqlDatabaseService requires an executor callable")
        self._executor = executor

    def handle(self, request: HttpRequest) -> HttpResponse:
        if request.method != "POST":
            return HttpResponse(status=405, reason="method not allowed")
        sql = request.body.decode("utf-8", errors="replace")
        try:
            rows = self._executor(sql)
        except Exception as exc:  # noqa: BLE001 - surface DB errors as 400s
            return HttpResponse(status=400, reason=f"query failed: {exc}")
        return HttpResponse(status=200, body=json.dumps(rows).encode())

    def service_seconds(self, request: HttpRequest, response: HttpResponse) -> float:
        # Matches the ~136 ms the paper reports for the SQLite query step,
        # scaled mildly by result size.
        return 0.1 + len(response.body) / 1e8


class EchoService(HttpService):
    """Returns the request body unchanged (testing / microbenchmarks)."""

    def __init__(self, host: str = "echo.internal", extra_seconds: float = 0.0):
        super().__init__(host)
        self.extra_seconds = extra_seconds

    def handle(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(status=200, body=request.body)

    def service_seconds(self, request: HttpRequest, response: HttpResponse) -> float:
        return self.extra_seconds + super().service_seconds(request, response)
