"""Simulated network, HTTP model, sanitization, and remote services."""

from .http import (
    ALLOWED_METHODS,
    ALLOWED_VERSIONS,
    HttpRequest,
    HttpResponse,
    SanitizationError,
    sanitize_request,
)
from .kv import (
    KV_OPS,
    KeyValueStoreService,
    format_kv_request,
    parse_kv_request_item,
    parse_kv_response_item,
    sanitize_kv_request,
)
from .network import HttpService, LatencyModel, SimulatedNetwork
from .services import (
    AuthService,
    EchoService,
    LlmService,
    LogShardService,
    ObjectStoreService,
    SqlDatabaseService,
)

__all__ = [
    "ALLOWED_METHODS",
    "ALLOWED_VERSIONS",
    "HttpRequest",
    "HttpResponse",
    "SanitizationError",
    "sanitize_request",
    "KV_OPS",
    "KeyValueStoreService",
    "format_kv_request",
    "parse_kv_request_item",
    "parse_kv_response_item",
    "sanitize_kv_request",
    "HttpService",
    "LatencyModel",
    "SimulatedNetwork",
    "AuthService",
    "EchoService",
    "LlmService",
    "LogShardService",
    "ObjectStoreService",
    "SqlDatabaseService",
]
