"""HTTP message model and communication-function input sanitization.

Communication engines are trusted code, so the data they receive from
untrusted compute functions must be validated before any syscall is
made on its behalf.  §6.3: "For our HTTP function, we only rely on the
first line defined by the protocol to contain the HTTP method and
protocol version.  Dandelion can check these fields against a fixed set
of options and the first part of the URI, which identifies the host to
connect to with either a valid IP or a domain name."

:func:`sanitize_request` implements exactly that check and raises
:class:`SanitizationError` on anything else.
"""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import urlsplit

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "SanitizationError",
    "sanitize_request",
    "ALLOWED_METHODS",
    "ALLOWED_VERSIONS",
]

ALLOWED_METHODS = frozenset({"GET", "HEAD", "POST", "PUT", "DELETE", "PATCH"})
ALLOWED_VERSIONS = frozenset({"HTTP/1.0", "HTTP/1.1"})

# RFC 1035-style hostname label.
_LABEL = re.compile(r"^(?!-)[A-Za-z0-9-]{1,63}(?<!-)$")


class SanitizationError(ValueError):
    """Raised when untrusted request data fails validation."""


@dataclass(frozen=True)
class HttpRequest:
    """A parsed HTTP request flowing through the platform."""

    method: str
    url: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def host(self) -> str:
        try:
            return urlsplit(self.url).hostname or ""
        except ValueError:
            return ""

    @property
    def path(self) -> str:
        parts = urlsplit(self.url)
        path = parts.path or "/"
        if parts.query:
            path = f"{path}?{parts.query}"
        return path

    @property
    def size(self) -> int:
        """Approximate on-the-wire size in bytes."""
        header_bytes = sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        return len(self.method) + len(self.url) + len(self.version) + 4 + header_bytes + len(self.body)

    def first_line(self) -> str:
        return f"{self.method} {self.url} {self.version}"


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP response returned by a (simulated) remote service."""

    status: int
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)
    reason: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def size(self) -> int:
        header_bytes = sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        return 16 + header_bytes + len(self.body)

    def text(self, encoding: str = "utf-8") -> str:
        return self.body.decode(encoding)


# Host validity is a pure function of the host string; communication
# functions validate the same handful of hosts millions of times per
# experiment, so memoize (bounded to keep adversarial inputs from
# growing it without limit).
_HOST_CACHE: dict[str, bool] = {}
_HOST_CACHE_LIMIT = 1024


def _valid_host(host: str) -> bool:
    cached = _HOST_CACHE.get(host)
    if cached is not None:
        return cached
    valid = _compute_valid_host(host)
    if len(_HOST_CACHE) < _HOST_CACHE_LIMIT:
        _HOST_CACHE[host] = valid
    return valid


def _compute_valid_host(host: str) -> bool:
    if not host:
        return False
    try:
        ipaddress.ip_address(host)
        return True
    except ValueError:
        pass
    if len(host) > 253:
        return False
    labels = host.split(".")
    return all(_LABEL.match(label) for label in labels)


def sanitize_request(request: HttpRequest) -> HttpRequest:
    """Validate an untrusted request per the paper's §6.3 rules.

    Checks the method and protocol version against fixed allow-lists
    and requires the URI's host part to be a valid IP address or domain
    name.  Returns the request unchanged if valid; raises
    :class:`SanitizationError` otherwise.
    """
    if request.method not in ALLOWED_METHODS:
        raise SanitizationError(f"disallowed HTTP method {request.method!r}")
    if request.version not in ALLOWED_VERSIONS:
        raise SanitizationError(f"disallowed protocol version {request.version!r}")
    if any(c in request.url for c in ("\r", "\n", " ")):
        raise SanitizationError("URL contains forbidden whitespace/control characters")
    try:
        parts = urlsplit(request.url)
        hostname = parts.hostname
    except ValueError as exc:
        raise SanitizationError(f"unparseable URL: {exc}") from exc
    if parts.scheme not in ("http", "https"):
        raise SanitizationError(f"disallowed URL scheme {parts.scheme!r}")
    host = hostname or ""
    if not _valid_host(host):
        raise SanitizationError(f"invalid host {host!r}")
    for name, value in request.headers.items():
        if any(c in name or c in value for c in ("\r", "\n")):
            raise SanitizationError("header contains CR/LF (injection attempt)")
    return request
