"""Key-value text protocol — the paper's example second protocol (§4.1).

"Support for additional protocols can be added as needed, such as text
protocols to communicate with in-memory key-value stores directly over
TCP or UDP [21]" (the citation is memcached's text protocol).  This
module provides:

* the request/response envelope compute functions use
  (:func:`format_kv_request` / :func:`parse_kv_response_item`);
* the §6.3-style sanitizer for the protocol (op allow-list, memcached
  key rules: ≤250 bytes, no whitespace/control characters);
* :class:`KeyValueStoreService`, an in-memory store with
  memcached-flavoured semantics (get/set/delete/incr) and a
  sub-millisecond service-time model;
* the network-side exchange used by the communication engine's ``kv``
  protocol handler.
"""

from __future__ import annotations

import json
from typing import Optional

from .http import SanitizationError, _valid_host

__all__ = [
    "KV_OPS",
    "format_kv_request",
    "parse_kv_request_item",
    "parse_kv_response_item",
    "sanitize_kv_request",
    "KeyValueStoreService",
]

KV_OPS = frozenset({"get", "set", "delete", "incr"})

_MAX_KEY_BYTES = 250  # memcached's limit
_MAX_VALUE_BYTES = 1 << 20


def format_kv_request(op: str, host: str, key: str, value: bytes = b"") -> bytes:
    """Serialize a KV request item for a ``kv`` communication function."""
    return json.dumps(
        {"op": op, "host": host, "key": key, "value_hex": value.hex()}
    ).encode("utf-8")


def parse_kv_request_item(data: bytes) -> dict:
    envelope = json.loads(data.decode("utf-8"))
    if not isinstance(envelope, dict):
        raise ValueError("kv envelope must be a JSON object")
    missing = {"op", "host", "key", "value_hex"} - set(envelope)
    if missing:
        raise ValueError(f"kv envelope missing fields: {sorted(missing)}")
    envelope["value"] = bytes.fromhex(envelope.pop("value_hex"))
    return envelope


def parse_kv_response_item(data: bytes) -> dict:
    """Decode a KV response: {status, value (bytes), error?}."""
    envelope = json.loads(data.decode("utf-8"))
    if not isinstance(envelope, dict) or "status" not in envelope:
        raise ValueError("kv response must be a JSON object with 'status'")
    if "value_hex" in envelope:
        envelope["value"] = bytes.fromhex(envelope.pop("value_hex"))
    else:
        envelope.setdefault("value", b"")
    return envelope


def sanitize_kv_request(envelope: dict) -> dict:
    """Validate an untrusted KV request per the protocol's rules."""
    op = envelope.get("op")
    if op not in KV_OPS:
        raise SanitizationError(f"disallowed kv operation {op!r}")
    host = envelope.get("host", "")
    if not _valid_host(host):
        raise SanitizationError(f"invalid host {host!r}")
    key = envelope.get("key", "")
    if not key:
        raise SanitizationError("empty key")
    raw_key = key.encode("utf-8")
    if len(raw_key) > _MAX_KEY_BYTES:
        raise SanitizationError(f"key longer than {_MAX_KEY_BYTES} bytes")
    if any(b <= 0x20 or b == 0x7F for b in raw_key):
        raise SanitizationError("key contains whitespace or control characters")
    if len(envelope.get("value", b"")) > _MAX_VALUE_BYTES:
        raise SanitizationError("value exceeds the 1 MiB limit")
    return envelope


class KeyValueStoreService:
    """An in-memory KV store reachable over the simulated network.

    Not an :class:`~repro.net.network.HttpService`: the ``kv`` protocol
    handler talks to it through :meth:`handle_kv`.  Registered on the
    network under its host name like any service.
    """

    def __init__(self, host: str = "cache.internal"):
        if not host:
            raise ValueError("service host must be non-empty")
        self.host = host
        self._data: dict[str, bytes] = {}
        self.requests_served = 0

    def _count(self) -> None:
        self.requests_served += 1

    # -- protocol semantics -----------------------------------------------------

    def handle_kv(self, op: str, key: str, value: bytes) -> tuple[int, bytes, str]:
        """Returns (status, value, reason); status mimics HTTP codes."""
        if op == "get":
            stored = self._data.get(key)
            if stored is None:
                return 404, b"", "miss"
            return 200, stored, "hit"
        if op == "set":
            self._data[key] = bytes(value)
            return 200, b"", "stored"
        if op == "delete":
            if key in self._data:
                del self._data[key]
                return 200, b"", "deleted"
            return 404, b"", "miss"
        if op == "incr":
            try:
                current = int(self._data.get(key, b"0"))
                step = int(value or b"1")
            except ValueError:
                return 400, b"", "not a number"
            updated = str(current + step).encode()
            self._data[key] = updated
            return 200, updated, "incremented"
        return 400, b"", f"unknown op {op!r}"

    def service_seconds(self, value_bytes: int) -> float:
        """In-memory stores answer in tens of microseconds."""
        return 20e-6 + value_bytes / 10e9

    # -- test helpers ----------------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        self._data[key] = bytes(value)

    def get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)
