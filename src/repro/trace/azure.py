"""Synthetic Azure-Functions-like trace generation.

The paper replays a 100-function sample (drawn with the InVitro
sampler) of day 6, hour 8 of the Azure Functions trace released by
Shahrad et al. [93].  The trace itself is not redistributable here, so
this module synthesises invocation streams matching that paper's
published statistics:

* invocation counts per function are extremely skewed — a few functions
  receive almost all traffic while most fire rarely (we use Zipf
  popularity over the total volume);
* execution durations are short and heavy-tailed (roughly log-normal;
  ~50% of functions average under one second, many run tens of ms);
* functions fall into arrival-pattern classes: roughly steady
  HTTP-triggered traffic, timer-driven periodic bursts, and rare
  one-off invocations;
* memory footprints are dominated by small allocations (tens to a few
  hundred MB).

The output is an :class:`AzureTrace`: function descriptors plus a
time-sorted list of invocations with per-invocation durations, so that
both platforms (Dandelion and Firecracker+Knative) replay the *exact
same* request sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.distributions import Rng

__all__ = ["TraceFunction", "Invocation", "AzureTrace", "generate_trace"]

MiB = 1024 * 1024

# Duration distribution: log-normal, median 80 ms, heavy tail capped
# at 10 s — consistent with the "many functions execute for tens of
# milliseconds or less" / "50% average under 1 s" statistics.
_DURATION_MEDIAN_SECONDS = 0.08
_DURATION_SIGMA = 1.1
_DURATION_MIN = 0.010
_DURATION_MAX = 10.0

# Memory: log-normal, median 48 MiB, capped at 512 MiB.
_MEMORY_MEDIAN = 48 * MiB
_MEMORY_SIGMA = 0.7
_MEMORY_MIN = 16 * MiB
_MEMORY_MAX = 512 * MiB

# Arrival-pattern mix (fractions of functions).
_PATTERN_STEADY = 0.45    # Poisson at the function's rate
_PATTERN_PERIODIC = 0.35  # timer-style: a burst every period
# remainder: "rare" — a handful of invocations over the whole window


@dataclass(frozen=True)
class TraceFunction:
    """One function of the trace with its workload statistics."""

    name: str
    median_duration_seconds: float
    duration_sigma: float
    memory_bytes: int
    pattern: str                 # "steady" | "periodic" | "rare"
    mean_rate_rps: float         # long-run average invocation rate
    period_seconds: float = 0.0  # for periodic functions
    burst_size: int = 1


@dataclass(frozen=True)
class Invocation:
    """One trace entry: when, which function, how long it runs."""

    time: float
    function_name: str
    duration_seconds: float


@dataclass
class AzureTrace:
    """A replayable trace: functions plus their invocation stream."""

    functions: list[TraceFunction]
    invocations: list[Invocation]
    duration_seconds: float

    @property
    def total_invocations(self) -> int:
        return len(self.invocations)

    @property
    def average_rps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return len(self.invocations) / self.duration_seconds

    def function(self, name: str) -> TraceFunction:
        for candidate in self.functions:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no trace function {name!r}")

    def invocations_of(self, name: str) -> list[Invocation]:
        return [inv for inv in self.invocations if inv.function_name == name]


def _clamped_lognormal(rng: Rng, median: float, sigma: float, low: float, high: float) -> float:
    return min(high, max(low, rng.lognormal(median, sigma)))


def generate_functions(
    count: int,
    total_rps: float,
    rng: Rng,
    zipf_skew: float = 1.1,
) -> list[TraceFunction]:
    """Synthesize ``count`` functions sharing ``total_rps`` of traffic."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if total_rps <= 0:
        raise ValueError("total_rps must be positive")
    # Popularity classes calibrated to the Shahrad et al.
    # characterisation: a couple of hot functions carry most traffic;
    # ~90% of functions average less than one invocation per minute.
    # Each function draws a class, then a log-uniform rate within it;
    # all rates are finally scaled so they sum to ``total_rps``.
    import math

    classes = [
        (0.02, 0.5, 2.0),       # hot
        (0.08, 0.05, 0.5),      # medium
        (0.25, 0.005, 0.05),    # low: once per 20..200 s
        (1.00, 0.0005, 0.005),  # rare: once per 3..30 min
    ]
    raw = []
    for _ in range(count):
        draw = rng.uniform()
        cumulative = 0.0
        for fraction, low, high in classes:
            if draw < fraction:
                raw.append(math.exp(rng.uniform(math.log(low), math.log(high))))
                break
            # fractions in `classes` are cumulative upper bounds
    scale = total_rps / sum(raw)
    weights = [rate * scale / total_rps for rate in raw]
    functions = []
    for index in range(count):
        rate = total_rps * weights[index]
        draw = rng.uniform()
        if draw < _PATTERN_STEADY:
            pattern, period, burst = "steady", 0.0, 1
        elif draw < _PATTERN_STEADY + _PATTERN_PERIODIC:
            pattern = "periodic"
            period = rng.choice([30.0, 60.0, 120.0, 300.0])
            # Timer triggers fire one or a few invocations; cap the
            # burst so a popular timer does not degenerate into a
            # stampede of hundreds of simultaneous requests.
            burst = max(1, min(4, round(rate * period)))
        else:
            pattern, period, burst = "rare", 0.0, 1
            rate = min(rate, 1.0 / 300.0)  # at most a few per trace window
        functions.append(
            TraceFunction(
                name=f"fn{index:04d}",
                median_duration_seconds=_clamped_lognormal(
                    rng, _DURATION_MEDIAN_SECONDS, _DURATION_SIGMA, _DURATION_MIN, 3.0
                ),
                duration_sigma=0.4,
                memory_bytes=int(
                    _clamped_lognormal(rng, _MEMORY_MEDIAN, _MEMORY_SIGMA, _MEMORY_MIN, _MEMORY_MAX)
                ),
                pattern=pattern,
                mean_rate_rps=rate,
                period_seconds=period,
                burst_size=burst,
            )
        )
    return functions


def _arrivals_for(function: TraceFunction, duration: float, rng: Rng) -> list[float]:
    if function.pattern == "steady":
        return rng.poisson_arrivals(function.mean_rate_rps, duration)
    if function.pattern == "periodic":
        arrivals = []
        phase = rng.uniform(0, function.period_seconds)
        t = phase
        while t < duration:
            for b in range(function.burst_size):
                jitter = rng.uniform(0, 10.0)
                when = t + jitter
                if when < duration:
                    arrivals.append(when)
            t += function.period_seconds
        return sorted(arrivals)
    # rare
    return rng.poisson_arrivals(function.mean_rate_rps, duration)


def generate_trace(
    function_count: int = 100,
    duration_seconds: float = 1200.0,
    total_rps: float = 15.0,
    seed: int = 0,
) -> AzureTrace:
    """Generate a full replayable trace.

    Defaults mirror the paper's setup: 100 functions over a 20-minute
    window at a low-tens aggregate RPS (Cloudlab d430-scale load).
    """
    rng = Rng(seed)
    functions = generate_functions(function_count, total_rps, rng.fork(1))
    duration_rng = rng.fork(2)
    arrival_rng = rng.fork(3)
    invocations: list[Invocation] = []
    for function in functions:
        for t in _arrivals_for(function, duration_seconds, arrival_rng):
            duration = _clamped_lognormal(
                duration_rng,
                function.median_duration_seconds,
                function.duration_sigma,
                _DURATION_MIN,
                _DURATION_MAX,
            )
            invocations.append(Invocation(t, function.name, duration))
    invocations.sort(key=lambda inv: inv.time)
    return AzureTrace(functions, invocations, duration_seconds)
