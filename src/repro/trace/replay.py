"""Trace replay on Dandelion and on Firecracker+Knative (§7.8).

Both platforms replay the *same* invocation stream:

* :class:`DandelionTraceWorker` models Dandelion with the process
  isolation backend (the configuration §7.8 uses): every request
  cold-creates a sandbox (a few hundred µs), runs to completion on a
  dedicated core, and commits the function's memory only while the
  request is running.

  The full functional worker (:class:`repro.worker.WorkerNode`) is
  exercised by the application experiments; trace replay involves tens
  of thousands of requests whose *bodies* the trace does not contain,
  so this worker models their timing and memory numerically while
  keeping the same scheduling structure (run-to-completion on a core
  pool, creation on the critical path).

* The Firecracker side is a :class:`~repro.baselines.base.FaasPlatform`
  with :class:`~repro.baselines.base.KeepAlivePolicy`, standing in for
  Knative's autoscaler keeping MicroVMs warm after requests.

:func:`replay_on_dandelion` / :func:`replay_on_faas` return a
:class:`ReplayReport` with the committed/active memory series and
latency statistics that Figs 1 and 10 plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.base import IsolationBackend, create_backend
from ..baselines.base import FaasPlatform, KeepAlivePolicy, PlatformSpec, compute_phase
from ..baselines.specs import FIRECRACKER_SNAPSHOT
from ..composition.registry import FunctionBinary
from ..sim.core import Environment
from ..sim.metrics import LatencyRecorder, TimeSeries
from ..sim.resources import Resource
from .azure import AzureTrace, Invocation, TraceFunction

__all__ = [
    "ReplayReport",
    "DandelionTraceWorker",
    "replay_on_dandelion",
    "replay_on_faas",
    "GUEST_OS_OVERHEAD_BYTES",
]

MiB = 1024 * 1024
# Extra committed memory a MicroVM carries beyond the function's own
# working set: guest kernel, rootfs page cache, agent (§2.3: "Running a
# guest OS inside each function sandbox also adds to the memory
# footprint").
GUEST_OS_OVERHEAD_BYTES = 40 * MiB


@dataclass
class ReplayReport:
    """What one platform did with the trace."""

    platform: str
    committed_series: TimeSeries
    active_series: TimeSeries
    latencies: LatencyRecorder
    cold_requests: int
    total_requests: int
    trace_duration_seconds: float

    @property
    def cold_fraction(self) -> float:
        return self.cold_requests / self.total_requests if self.total_requests else 0.0

    def average_committed_bytes(self) -> float:
        return self.committed_series.time_weighted_mean(0, self.trace_duration_seconds)

    def average_active_bytes(self) -> float:
        return self.active_series.time_weighted_mean(0, self.trace_duration_seconds)

    def summary(self) -> dict:
        return {
            "platform": self.platform,
            "avg_committed_mib": self.average_committed_bytes() / MiB,
            "avg_active_mib": self.average_active_bytes() / MiB,
            "peak_committed_mib": self.committed_series.maximum() / MiB,
            "p50_latency": self.latencies.percentile(50),
            "p99_latency": self.latencies.percentile(99),
            "cold_fraction": self.cold_fraction,
            "requests": self.total_requests,
        }


class DandelionTraceWorker:
    """Dandelion node replaying trace functions (process backend)."""

    def __init__(
        self,
        env: Environment,
        cores: int = 16,
        backend: "IsolationBackend | None" = None,
    ):
        self.env = env
        self.cores = Resource(env, capacity=cores)
        self.backend = backend or create_backend("process", "linux")
        self.committed_series = TimeSeries("committed")
        self.active_series = TimeSeries("active")
        self.committed_series.record(env.now, 0)
        self.active_series.record(env.now, 0)
        self._committed = 0
        self.latencies = LatencyRecorder("dandelion")
        self.requests_served = 0
        self._placeholder = FunctionBinary("trace-fn", lambda vfs: None)

    def _record(self) -> None:
        self.committed_series.record(self.env.now, self._committed)
        self.active_series.record(self.env.now, self._committed)

    def request(self, function: TraceFunction, duration_seconds: float):
        return self.env.process(self._serve(function, duration_seconds))

    def _serve(self, function: TraceFunction, duration_seconds: float):
        arrived = self.env.now
        creation = self.backend.creation_seconds(self._placeholder)
        with self.cores.acquire() as slot:
            yield slot
            # Context created: memory committed only from here...
            self._committed += function.memory_bytes
            self._record()
            yield self.env.timeout(creation + duration_seconds)
            # ...to here: freed as soon as the request finishes.
            self._committed -= function.memory_bytes
            self._record()
        latency = self.env.now - arrived
        self.latencies.record(latency)
        self.requests_served += 1


def _replay(env: Environment, trace: AzureTrace, submit) -> None:
    def driver():
        processes = []
        for invocation in trace.invocations:
            delay = invocation.time - env.now
            if delay > 0:
                yield env.timeout(delay)
            processes.append(submit(invocation))
        for process in processes:
            yield process

    env.run(until=env.process(driver()))


def replay_on_dandelion(
    trace: AzureTrace,
    cores: int = 16,
    backend_name: str = "process",
) -> ReplayReport:
    env = Environment()
    worker = DandelionTraceWorker(env, cores=cores, backend=create_backend(backend_name, "linux"))
    functions = {f.name: f for f in trace.functions}

    def submit(invocation: Invocation):
        return worker.request(functions[invocation.function_name], invocation.duration_seconds)

    _replay(env, trace, submit)
    return ReplayReport(
        platform="dandelion",
        committed_series=worker.committed_series,
        active_series=worker.active_series,
        latencies=worker.latencies,
        cold_requests=worker.requests_served,  # every request cold-starts
        total_requests=worker.requests_served,
        trace_duration_seconds=trace.duration_seconds,
    )


def replay_on_faas(
    trace: AzureTrace,
    cores: int = 16,
    spec: PlatformSpec = FIRECRACKER_SNAPSHOT,
    keep_alive_seconds: float = 75.0,
    guest_os_overhead_bytes: int = GUEST_OS_OVERHEAD_BYTES,
    knative_cold_overhead_seconds: float = 0.8,
) -> ReplayReport:
    """Replay on Firecracker with Knative-style keep-alive autoscaling.

    The default 75 s keep-alive approximates Knative's scale-down
    behaviour (60 s stable window plus the scale-to-zero grace period)
    and lands near the few-percent cold ratio the paper reports for
    Knative on this trace (~3.3% of invocations cold).

    ``knative_cold_overhead_seconds`` is the orchestration path a
    scale-from-zero request traverses before the MicroVM restore even
    starts (activator hop, autoscaler reaction, scheduling) — the
    sub-second control-plane latency that dominates Knative cold starts
    and drives the paper's 46% p99 gap.
    """
    import dataclasses

    env = Environment()
    effective_spec = dataclasses.replace(
        spec,
        cold_start_seconds=spec.cold_start_seconds + knative_cold_overhead_seconds,
    )
    platform = FaasPlatform(
        env, effective_spec, cores=cores, policy=KeepAlivePolicy(keep_alive_seconds)
    )
    functions = {f.name: f for f in trace.functions}
    registered: set[str] = set()

    def submit(invocation: Invocation):
        function = functions[invocation.function_name]
        if function.name not in registered:
            platform.register_function(
                function.name,
                [compute_phase(function.median_duration_seconds)],
                memory_bytes=function.memory_bytes + guest_os_overhead_bytes,
            )
            registered.add(function.name)
        # Per-invocation duration overrides the registered phase via a
        # one-off model (durations vary across invocations).
        return _faas_request_with_duration(platform, function, invocation.duration_seconds)

    _replay(env, trace, submit)
    return ReplayReport(
        platform=spec.name,
        committed_series=platform.committed_series,
        active_series=platform.active_series,
        latencies=platform.latencies,
        cold_requests=platform.cold_requests,
        total_requests=platform.cold_requests + platform.hot_requests,
        trace_duration_seconds=trace.duration_seconds,
    )


def _faas_request_with_duration(platform: FaasPlatform, function: TraceFunction, duration: float):
    """Serve one request whose compute time differs from the registered
    model (the FaasPlatform API registers static phases; the trace has a
    duration per invocation)."""
    model = platform._functions[function.name]
    varied = type(model)(
        name=model.name,
        phases=(compute_phase(duration),),
        memory_bytes=model.memory_bytes,
    )
    return platform.env.process(platform._serve(varied))
