"""InVitro-style trace sampling.

The paper samples 100 functions from the Azure trace "using the
InVitro sampler" [104], whose key property is preserving the workload's
statistical shape: sampling uniformly at random over functions would
almost surely miss the few very hot functions that carry most of the
load, so InVitro stratifies functions by invocation frequency and
samples proportionally from each stratum.

:func:`sample_functions` reproduces that scheme: functions are bucketed
into frequency quantile strata, and each stratum contributes a share of
the sample proportional to its population.
"""

from __future__ import annotations

import math

from ..sim.distributions import Rng
from .azure import AzureTrace, TraceFunction

__all__ = ["sample_functions", "sample_trace"]


def sample_functions(
    functions: list[TraceFunction],
    sample_size: int,
    rng: Rng,
    strata: int = 5,
) -> list[TraceFunction]:
    """Stratified sample of ``sample_size`` functions by invocation rate."""
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    if sample_size > len(functions):
        raise ValueError(
            f"cannot sample {sample_size} from {len(functions)} functions"
        )
    strata = max(1, min(strata, sample_size))
    ordered = sorted(functions, key=lambda f: f.mean_rate_rps)
    buckets: list[list[TraceFunction]] = []
    bucket_size = math.ceil(len(ordered) / strata)
    for start in range(0, len(ordered), bucket_size):
        buckets.append(ordered[start : start + bucket_size])

    picked: list[TraceFunction] = []
    remaining = sample_size
    for index, bucket in enumerate(buckets):
        remaining_buckets = len(buckets) - index
        share = round(remaining * len(bucket) / sum(len(b) for b in buckets[index:]))
        share = min(share, len(bucket), remaining)
        if index == len(buckets) - 1:
            share = min(remaining, len(bucket))
        if share > 0:
            picked.extend(rng.sample(bucket, share))
            remaining -= share
    # Top up from the full population if rounding left a shortfall.
    if remaining > 0:
        leftovers = [f for f in ordered if f not in picked]
        picked.extend(rng.sample(leftovers, remaining))
    return picked


def sample_trace(trace: AzureTrace, sample_size: int, rng: Rng, strata: int = 5) -> AzureTrace:
    """Restrict a trace to a stratified sample of its functions."""
    picked = sample_functions(trace.functions, sample_size, rng, strata=strata)
    names = {f.name for f in picked}
    invocations = [inv for inv in trace.invocations if inv.function_name in names]
    return AzureTrace(picked, invocations, trace.duration_seconds)
