"""Azure-Functions-like trace synthesis, sampling, and replay."""

from .azure import AzureTrace, Invocation, TraceFunction, generate_trace
from .azure import generate_functions
from .replay import (
    GUEST_OS_OVERHEAD_BYTES,
    DandelionTraceWorker,
    ReplayReport,
    replay_on_dandelion,
    replay_on_faas,
)
from .sampler import sample_functions, sample_trace
from .stream import StreamedTrace, streamed_trace

__all__ = [
    "StreamedTrace",
    "streamed_trace",
    "AzureTrace",
    "Invocation",
    "TraceFunction",
    "generate_trace",
    "generate_functions",
    "GUEST_OS_OVERHEAD_BYTES",
    "DandelionTraceWorker",
    "ReplayReport",
    "replay_on_dandelion",
    "replay_on_faas",
    "sample_functions",
    "sample_trace",
]
