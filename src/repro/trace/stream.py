"""Streamed trace generation for ≥10k-function populations.

:func:`generate_trace` materializes every invocation up front — fine at
the paper's 100-function sample, but a 100× population (the scale Figs
1/10 are really about) produces over a million invocations and trace
construction starts to rival the simulation itself for wall-clock and
memory.  :class:`StreamedTrace` keeps the *function* population
materialized (O(functions), small) and generates the invocation stream
lazily: one tiny generator per function, merged in time order with
:func:`heapq.merge`.  Peak memory is O(functions) — there is never a
full arrival list.

Determinism is stricter than the eager generator's: instead of one
shared arrival/duration RNG consumed in function order, every function
forks its own pair of RNG streams keyed by its position.  Each
function's invocation sequence is therefore independent of how (or
whether) the other functions are consumed — the property the sharded
simulator's invariance argument leans on — and two iterations of the
same :class:`StreamedTrace` yield byte-identical streams.

Invocations are plain ``(time, function_index, duration_seconds)``
tuples rather than :class:`~repro.trace.azure.Invocation` dataclasses:
at a million-plus arrivals the allocation difference is measurable, and
the sharded engine only ever needs those three fields.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

from ..sim.distributions import Rng
from .azure import (
    AzureTrace,
    Invocation,
    TraceFunction,
    _DURATION_MAX,
    _DURATION_MIN,
    generate_functions,
)
from .sampler import sample_functions

__all__ = ["StreamedTrace", "streamed_trace"]

# Periodic bursts jitter each invocation up to this many seconds after
# the timer tick (mirrors azure._arrivals_for); every period in
# generate_functions is >= 30s, so bursts of consecutive periods never
# overlap and sorting within one period keeps the stream monotone.
_PERIODIC_JITTER = 10.0


def _poisson_stream(index, fn, duration, arng, drng):
    # Hot loop: bind the underlying generator methods once per function
    # instead of per draw (an Rng wrapper call per invocation is
    # measurable at 100× scale).  ``expovariate(rate)`` is exactly
    # ``Rng.exponential(1/rate)``'s draw, and
    # ``exp(mu + sigma * gauss())`` is a lognormal draw through the
    # Box–Muller path, which amortizes one transcendental pair over two
    # draws where ``lognormvariate`` pays a rejection loop per draw.
    rate = fn.mean_rate_rps
    log_median = math.log(fn.median_duration_seconds)
    sigma = fn.duration_sigma
    gap = arng._random.expovariate
    gauss = drng._random.gauss
    exp = math.exp
    t = 0.0
    while True:
        t += gap(rate)
        if t >= duration:
            return
        d = exp(log_median + sigma * gauss(0.0, 1.0))
        if d < _DURATION_MIN:
            d = _DURATION_MIN
        elif d > _DURATION_MAX:
            d = _DURATION_MAX
        yield (t, index, d)


def _periodic_stream(index, fn, duration, arng, drng):
    log_median = math.log(fn.median_duration_seconds)
    sigma = fn.duration_sigma
    period = fn.period_seconds
    burst_size = fn.burst_size
    uniform = arng.uniform
    gauss = drng._random.gauss
    exp = math.exp
    t = uniform(0, period)
    while t < duration:
        batch = []
        for _ in range(burst_size):
            when = t + uniform(0, _PERIODIC_JITTER)
            if when < duration:
                batch.append(when)
        batch.sort()
        for when in batch:
            d = exp(log_median + sigma * gauss(0.0, 1.0))
            if d < _DURATION_MIN:
                d = _DURATION_MIN
            elif d > _DURATION_MAX:
                d = _DURATION_MAX
            yield (when, index, d)
        t += period


class StreamedTrace:
    """A replayable trace whose invocation stream is generated lazily.

    ``functions`` is the full (possibly sampled) population;
    :meth:`iter_invocations` yields time-ordered
    ``(time, function_index, duration_seconds)`` tuples where
    ``function_index`` indexes into ``functions``.  Iterating twice
    yields identical streams.
    """

    __slots__ = ("functions", "duration_seconds", "seed")

    def __init__(self, functions: list[TraceFunction], duration_seconds: float, seed: int):
        self.functions = list(functions)
        self.duration_seconds = float(duration_seconds)
        self.seed = seed

    @property
    def function_count(self) -> int:
        return len(self.functions)

    def memory_bytes(self) -> list[int]:
        """Per-function memory footprint, indexed like the stream."""
        return [fn.memory_bytes for fn in self.functions]

    def iter_invocations(self) -> Iterator[tuple]:
        """Time-ordered invocation tuples; O(functions) peak memory."""
        base = Rng(self.seed)
        duration_base = base.fork(2)
        arrival_base = base.fork(3)
        streams = []
        for index, fn in enumerate(self.functions):
            arng = arrival_base.fork(index + 1)
            drng = duration_base.fork(index + 1)
            if fn.pattern == "periodic":
                streams.append(_periodic_stream(index, fn, self.duration_seconds, arng, drng))
            else:  # steady and rare are both Poisson at the mean rate
                streams.append(_poisson_stream(index, fn, self.duration_seconds, arng, drng))
        return heapq.merge(*streams)

    def materialize(self) -> AzureTrace:
        """Eager :class:`AzureTrace` of the same stream (small traces only)."""
        invocations = [
            Invocation(t, self.functions[index].name, duration)
            for t, index, duration in self.iter_invocations()
        ]
        return AzureTrace(list(self.functions), invocations, self.duration_seconds)


def streamed_trace(
    function_count: int = 10_000,
    duration_seconds: float = 1200.0,
    total_rps: float = 1200.0,
    seed: int = 42,
    sample_size: int | None = None,
    strata: int = 5,
) -> StreamedTrace:
    """Build a streamed trace population (defaults: 100× the Fig 10 sample).

    ``sample_size`` optionally restricts the generated population with
    the InVitro-style stratified sampler — the sampled subset then
    carries only its own share of ``total_rps``, exactly like
    :func:`~repro.trace.sampler.sample_trace` on an eager trace.
    """
    rng = Rng(seed)
    functions = generate_functions(function_count, total_rps, rng.fork(1))
    if sample_size is not None and sample_size < len(functions):
        functions = sample_functions(functions, sample_size, rng.fork(4), strata=strata)
    return StreamedTrace(functions, duration_seconds, seed)
