"""Proportional-Integral controller for core re-allocation (§5).

"The worker control plane dynamically balances CPU resources between
compute and communication engines to maximize application goodput.  It
periodically (every 30ms) measures the growth rates of the
communication and compute engines' queues.  It uses the difference
between their growth rates as an error signal for a
Proportional-Integral controller.  If the control signal is positive,
the control plane re-assigns a CPU core from the communication engine
type to the compute engine type.  If it is negative, it re-assigns a
core from the compute engine type to the communication engine type."
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PiController", "PiConfig"]


@dataclass(frozen=True)
class PiConfig:
    """Controller gains and actuation threshold."""

    proportional_gain: float = 1.0
    integral_gain: float = 0.1
    # Signals within [-deadband, +deadband] cause no re-assignment,
    # avoiding oscillation on balanced load.
    deadband: float = 0.5
    # Anti-windup clamp on the integral term.
    integral_limit: float = 50.0


class PiController:
    """Discrete PI controller over queue-growth error signals."""

    def __init__(self, config: PiConfig = PiConfig()):
        self.config = config
        self._integral = 0.0
        self.last_error = 0.0
        self.last_signal = 0.0

    def reset(self) -> None:
        self._integral = 0.0
        self.last_error = 0.0
        self.last_signal = 0.0

    @property
    def integral(self) -> float:
        return self._integral

    def update(self, compute_queue_growth: float, comm_queue_growth: float) -> int:
        """One control epoch; returns the actuation decision.

        +1: move a core from communication to compute engines.
        -1: move a core from compute to communication engines.
         0: no change.
        """
        error = compute_queue_growth - comm_queue_growth
        self._integral += error
        limit = self.config.integral_limit
        self._integral = max(-limit, min(limit, self._integral))
        signal = (
            self.config.proportional_gain * error
            + self.config.integral_gain * self._integral
        )
        self.last_error = error
        self.last_signal = signal
        if signal > self.config.deadband:
            # Acting bleeds the integral so a satisfied demand does not
            # keep pulling cores epoch after epoch.
            self._integral *= 0.5
            return +1
        if signal < -self.config.deadband:
            self._integral *= 0.5
            return -1
        return 0
