"""Control-plane process: periodic core re-allocation between engine types.

The decision — move a core toward compute, toward communication, or
hold — is a pluggable core-scheduling policy from the unified layer
(:mod:`repro.sched.cores`, docs/scheduling.md).  The default is the
paper's PI controller over queue-growth error signals
(:class:`~repro.sched.cores.PiCorePolicy`); the allocator samples both
engine groups each epoch, builds a
:class:`~repro.sched.snapshots.CoreSnapshot`, and actuates whatever the
policy decides, subject to the ``min_engines`` floor so neither
function type can be starved entirely.
"""

from __future__ import annotations

from typing import Optional

from ..engines.group import EngineGroup
from ..sched.cores import CorePolicy, PiCorePolicy
from ..sched.snapshots import CoreSnapshot
from ..sim.core import Environment
from .pi_controller import PiConfig

__all__ = ["CoreAllocator", "CONTROL_EPOCH_SECONDS"]

CONTROL_EPOCH_SECONDS = 0.030  # the paper's 30 ms control period


class CoreAllocator:
    """Runs the core policy and moves cores between the two engine groups.

    Each group always keeps at least ``min_engines`` cores so neither
    function type can be starved entirely.  Pass ``policy`` to slot in
    an alternative controller; ``config`` configures the default PI
    policy and is ignored when ``policy`` is given.
    """

    def __init__(
        self,
        env: Environment,
        compute_group: EngineGroup,
        comm_group: EngineGroup,
        epoch_seconds: float = CONTROL_EPOCH_SECONDS,
        config: PiConfig = PiConfig(),
        min_engines: int = 1,
        enabled: bool = True,
        policy: Optional[CorePolicy] = None,
    ):
        self.env = env
        self.compute_group = compute_group
        self.comm_group = comm_group
        self.epoch_seconds = epoch_seconds
        self.policy = policy if policy is not None else PiCorePolicy(config)
        # Back-compat: the wrapped PI controller stays reachable for
        # telemetry (last error/signal); None for non-PI policies.
        self.controller = getattr(self.policy, "controller", None)
        self.min_engines = min_engines
        self.enabled = enabled
        self.reassignments: list[tuple[float, str]] = []
        self.allocation_history: list[tuple[float, int, int]] = []
        self._previous_compute_queue = 0
        self._previous_comm_queue = 0
        if enabled:
            self.process = env.process(self._run())

    @property
    def compute_cores(self) -> int:
        return self.compute_group.engine_count

    @property
    def comm_cores(self) -> int:
        return self.comm_group.engine_count

    def _run(self):
        while True:
            yield self.env.timeout(self.epoch_seconds)
            compute_queue = self.compute_group.sample_queue()
            comm_queue = self.comm_group.sample_queue()
            snapshot = CoreSnapshot(
                self.env.now,
                compute_queue,
                comm_queue,
                compute_queue - self._previous_compute_queue,
                comm_queue - self._previous_comm_queue,
                self.compute_group.engine_count,
                self.comm_group.engine_count,
                self.min_engines,
            )
            self._previous_compute_queue = compute_queue
            self._previous_comm_queue = comm_queue
            decision = self.policy.decide(snapshot)
            if decision > 0 and self.comm_group.engine_count > self.min_engines:
                yield self.comm_group.shrink()
                self.compute_group.grow()
                self.reassignments.append((self.env.now, "comm->compute"))
            elif decision < 0 and self.compute_group.engine_count > self.min_engines:
                yield self.compute_group.shrink()
                self.comm_group.grow()
                self.reassignments.append((self.env.now, "compute->comm"))
            self.allocation_history.append(
                (self.env.now, self.compute_cores, self.comm_cores)
            )
