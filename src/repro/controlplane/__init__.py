"""Worker control plane: PI controller and core allocator."""

from .allocator import CONTROL_EPOCH_SECONDS, CoreAllocator
from .pi_controller import PiConfig, PiController

__all__ = ["CONTROL_EPOCH_SECONDS", "CoreAllocator", "PiConfig", "PiController"]
