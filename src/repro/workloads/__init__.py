"""Load generators and cross-platform phase-model workloads."""

from .loadgen import LoadResult, run_arrivals, run_open_loop, sweep_rates
from .phase_apps import (
    FETCH_COMPUTE_SECONDS,
    FETCH_IO_SECONDS,
    FETCH_PAYLOAD_BYTES,
    MATMUL_128_SECONDS,
    MATMUL_1x1_SECONDS,
    FixedDelayService,
    fetch_and_compute_phases,
    matmul_phases,
    register_phase_composition,
)

__all__ = [
    "LoadResult",
    "run_arrivals",
    "run_open_loop",
    "sweep_rates",
    "FETCH_COMPUTE_SECONDS",
    "FETCH_IO_SECONDS",
    "FETCH_PAYLOAD_BYTES",
    "MATMUL_128_SECONDS",
    "MATMUL_1x1_SECONDS",
    "FixedDelayService",
    "fetch_and_compute_phases",
    "matmul_phases",
    "register_phase_composition",
]
