"""Phase-model applications runnable on every platform.

The loaded experiments compare Dandelion against the baselines on the
*same* workload.  On the baselines a workload is a
:class:`~repro.baselines.base.FunctionModel` (compute/io phases); this
module provides the Dandelion-side equivalent: it compiles a phase list
into a registered composition whose compute phases become compute nodes
with the given modelled cost and whose io phases become communication
nodes talking to a fixed-delay service.

It also defines the two microbenchmark workloads of §7.4–§7.5:

* ``matmul`` — pure compute (128×128 int64 matrix multiply, ~3 ms
  native on the default server);
* ``fetch_and_compute`` — one phase fetches a 64 KiB array over HTTP
  and computes sum/min/max over a sample of elements; chained ``n``
  times for the §7.4 composition-depth sweep.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..baselines.base import Phase, compute_phase, io_phase
from ..functions.sdk import compute_function, format_http_request, write_item
from ..net.http import HttpRequest, HttpResponse
from ..net.network import HttpService
from ..worker import WorkerNode

__all__ = [
    "FixedDelayService",
    "register_phase_composition",
    "MATMUL_128_SECONDS",
    "MATMUL_1x1_SECONDS",
    "FETCH_PAYLOAD_BYTES",
    "FETCH_IO_SECONDS",
    "FETCH_COMPUTE_SECONDS",
    "matmul_phases",
    "fetch_and_compute_phases",
]

# 128x128 int64 matmul on the default 16-core server (dual E5-2630v3,
# a 2015-era part): ~2 M multiply-adds land at ~3 ms, which makes
# Dandelion-KVM peak near the paper's 4800 RPS on 16 cores.
MATMUL_128_SECONDS = 3.0e-3
# 1x1 matmul is a single multiply: effectively free next to sandbox cost.
MATMUL_1x1_SECONDS = 1e-6

FETCH_PAYLOAD_BYTES = 64 * 1024
# One fetch-and-compute phase: HTTP round trip for 64 KiB plus a light
# reduction over sampled elements.
FETCH_IO_SECONDS = 1.2e-3
FETCH_COMPUTE_SECONDS = 0.2e-3


def matmul_phases(seconds: float = MATMUL_128_SECONDS) -> list[Phase]:
    return [compute_phase(seconds)]


def fetch_and_compute_phases(
    phases: int = 2,
    io_seconds: float = FETCH_IO_SECONDS,
    compute_seconds: float = FETCH_COMPUTE_SECONDS,
) -> list[Phase]:
    """``phases`` repetitions of fetch (io) + reduce (compute)."""
    result: list[Phase] = []
    for _ in range(phases):
        result.append(io_phase(io_seconds))
        result.append(compute_phase(compute_seconds))
    return result


class FixedDelayService(HttpService):
    """A service with a configurable processing time and response size.

    Stands in for the storage endpoint of the fetch-and-compute
    microbenchmark: response payload and service delay are fixed.
    """

    def __init__(self, host: str, service_time_seconds: float, response_bytes: int = 0):
        super().__init__(host)
        self.service_time_seconds = service_time_seconds
        self._body = b"\x00" * response_bytes

    def handle(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(status=200, body=self._body)

    def service_seconds(self, request: HttpRequest, response: HttpResponse) -> float:
        return self.service_time_seconds


def register_phase_composition(
    worker: WorkerNode,
    name: str,
    phases: Iterable[Phase],
    io_service_host: Optional[str] = None,
    binary_size: int = 64 * 1024,
    io_response_bytes: int = FETCH_PAYLOAD_BYTES,
) -> str:
    """Register a phase-list workload as a Dandelion composition.

    Consecutive compute phases become compute nodes (with the phase
    duration as the modelled cost); io phases become communication
    nodes whose requests hit a :class:`FixedDelayService` (registered
    on the worker's network on first use).  Returns the composition
    name.
    """
    phases = list(phases)
    if not phases:
        raise ValueError("phase list must be non-empty")

    if any(p.kind == "io" for p in phases):
        host = io_service_host or f"{name}-io.internal"
        if host not in worker.network.hosts:
            # Network latency contributes ~RTT + transfer; the fixed
            # service delay supplies the remainder of the io phase.
            io_seconds = next(p.seconds for p in phases if p.kind == "io")
            transfer = worker.network.latency.response_seconds(
                HttpResponse(200, body=b"\x00" * io_response_bytes)
            )
            service_time = max(0.0, io_seconds - transfer)
            worker.network.register(
                FixedDelayService(host, service_time, response_bytes=io_response_bytes)
            )
    else:
        host = None

    # Group the phase list into compute nodes separated by comm nodes.
    # Each compute node absorbs the compute time since the previous io
    # phase AND formats the next request -- one sandbox per phase, as in
    # the paper's composition (a separate request-formatting function
    # would double the sandbox count).
    node_lines: list[str] = []
    edge_lines: list[str] = []
    previous_ref: Optional[str] = None  # "node.set" of upstream output
    state = {"pending": 0.0, "index": 0, "previous": None}

    def flush_compute(emits_request: bool) -> None:
        function_name = f"{name}_c{state['index']}"
        cost = max(state["pending"], 5e-6)
        out_set = "request" if emits_request else "data"
        binary = _phase_binary(function_name, cost, binary_size, host, out_set)
        worker.frontend.register_function(binary)
        node = f"n{state['index']}"
        node_lines.append(
            f"compute {node} uses {function_name} in(data) out({out_set});"
        )
        if state["previous"] is None:
            edge_lines.append(f"input data -> {node}.data;")
        else:
            edge_lines.append(f"{state['previous']} -> {node}.data;")
        state["previous"] = f"{node}.{out_set}"
        state["pending"] = 0.0
        state["index"] += 1

    for phase in phases:
        if phase.kind == "compute":
            state["pending"] += phase.seconds
        else:
            flush_compute(emits_request=True)
            comm = f"n{state['index']}"
            state["index"] += 1
            node_lines.append(f"comm {comm};")
            edge_lines.append(f"{state['previous']} -> {comm}.request;")
            state["previous"] = f"{comm}.response"
    # A final compute node produces the result (a tiny render step even
    # when the chain ends on an io phase).
    flush_compute(emits_request=False)

    source = (
        f"composition {name} {{\n"
        + "\n".join(node_lines)
        + "\n"
        + "\n".join(edge_lines)
        + f"\noutput {state['previous']} -> result;\n}}"
    )
    worker.frontend.register_composition(source)
    return name


def _phase_binary(function_name, seconds, binary_size, host, out_set="data"):
    if out_set == "request":
        # The fetch request is identical on every run; format it once
        # at registration instead of per invocation.
        request_bytes = format_http_request("GET", f"http://{host}/fetch")

        @compute_function(
            name=function_name, compute_cost=seconds, binary_size=binary_size
        )
        def phase_fn(vfs):
            # Aggregate (modelled cost) and format the next fetch.
            write_item(vfs, "request", "r", request_bytes)
    else:
        @compute_function(
            name=function_name, compute_cost=seconds, binary_size=binary_size
        )
        def phase_fn(vfs):
            # Functional placeholder: forward a small token so downstream
            # nodes have real input items.
            write_item(vfs, "data", "token", b"x")

    return phase_fn
