"""Open-loop load generation for throughput/latency experiments.

All the paper's loaded experiments (Figs 5–8) drive a platform with an
open-loop arrival process at a configured request rate and report
latency percentiles and achieved throughput.  :func:`run_open_loop`
implements that harness over any ``submit`` callable — a Dandelion
frontend invocation, a baseline-platform request, or a D-hybrid task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..sim.core import Environment
from ..sim.distributions import Rng
from ..sim.metrics import LatencyRecorder

__all__ = ["LoadResult", "run_open_loop", "run_arrivals", "sweep_rates"]


@dataclass
class LoadResult:
    """Outcome of one open-loop run."""

    offered_rps: float
    duration_seconds: float
    completed: int
    failed: int
    latencies: LatencyRecorder
    makespan_seconds: float

    @property
    def achieved_rps(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.completed / self.makespan_seconds

    @property
    def saturated(self) -> bool:
        """Whether the system could not keep up with the offered load."""
        return self.achieved_rps < 0.95 * self.offered_rps

    def summary(self) -> dict:
        row = {
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "completed": self.completed,
            "failed": self.failed,
        }
        if len(self.latencies):
            row.update(
                mean=self.latencies.mean,
                p50=self.latencies.percentile(50),
                p95=self.latencies.percentile(95),
                p99=self.latencies.percentile(99),
            )
        return row


def run_open_loop(
    env: Environment,
    submit: Callable[[], object],
    rate_rps: float,
    duration_seconds: float,
    rng: Optional[Rng] = None,
    warmup_seconds: float = 0.0,
    drain_seconds: float = 60.0,
) -> LoadResult:
    """Drive ``submit`` with open-loop arrivals and collect latencies.

    Arrivals are Poisson when ``rng`` is given, deterministic (evenly
    spaced) otherwise.  Requests arriving during the first
    ``warmup_seconds`` are executed but not measured.  After the last
    arrival, the run waits up to ``drain_seconds`` for stragglers.
    """
    if rng is not None:
        arrivals = rng.poisson_arrivals(rate_rps, duration_seconds, start=env.now)
    else:
        step = 1.0 / rate_rps if rate_rps > 0 else float("inf")
        arrivals = []
        t = env.now
        while t < env.now + duration_seconds and rate_rps > 0:
            arrivals.append(t)
            t += step
    return run_arrivals(
        env,
        submit,
        arrivals,
        offered_rps=rate_rps,
        duration_seconds=duration_seconds,
        warmup_until=env.now + warmup_seconds,
        drain_seconds=drain_seconds,
    )


def run_arrivals(
    env: Environment,
    submit: Callable[[], object],
    arrival_times: Iterable[float],
    offered_rps: float = 0.0,
    duration_seconds: float = 0.0,
    warmup_until: float = 0.0,
    drain_seconds: float = 60.0,
) -> LoadResult:
    """Like :func:`run_open_loop` but with explicit arrival timestamps
    (used by bursty schedules and trace replay)."""
    arrival_times = sorted(arrival_times)
    latencies = LatencyRecorder()
    state = {"completed": 0, "failed": 0}

    def finish(started: float, event) -> None:
        # Completion callback for one request (a failed completion
        # event propagates through the all_of below, as before).
        if not event._ok:
            return
        outcome = event._value
        if getattr(outcome, "ok", True) is False:
            state["failed"] += 1
        else:
            state["completed"] += 1
            if started >= warmup_until:
                latencies.record(env.now - started)

    def driver():
        # One driver process submits every request at its arrival time
        # and observes completions via callbacks — this used to be a
        # process per request, whose create/initialize/resume churn
        # dominated the event heap at high request counts.
        pending = []
        for arrive_at in arrival_times:
            delay = arrive_at - env.now
            if delay > 0:
                yield env.timeout(delay)
            started = env.now
            completion = submit()
            completion.callbacks.append(
                lambda event, started=started: finish(started, event)
            )
            pending.append(completion)
        if pending:
            yield env.all_of(pending)

    start = env.now
    driver_process = env.process(driver())
    if duration_seconds:
        # Stop at the drain deadline even if stragglers are still in
        # flight (they simply go unmeasured).
        cutoff = env.timeout(duration_seconds + drain_seconds)
        env.run(until=env.any_of([driver_process, cutoff]))
    else:
        env.run(until=driver_process)
    makespan = env.now - start
    return LoadResult(
        offered_rps=offered_rps,
        duration_seconds=duration_seconds,
        completed=state["completed"],
        failed=state["failed"],
        latencies=latencies,
        makespan_seconds=makespan,
    )


def sweep_rates(
    make_environment: Callable[[], tuple],
    rates: Iterable[float],
    duration_seconds: float,
    seed: int = 0,
) -> list[LoadResult]:
    """Run one fresh system per offered rate (no cross-rate pollution).

    ``make_environment()`` must return ``(env, submit)``.
    """
    results = []
    for index, rate in enumerate(rates):
        env, submit = make_environment()
        rng = Rng(seed * 1000 + index)
        results.append(run_open_loop(env, submit, rate, duration_seconds, rng=rng))
    return results
