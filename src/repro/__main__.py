"""Command-line entry point: run paper experiments by name.

Usage::

    python -m repro list
    python -m repro run table1 fig6 sec77
    python -m repro run all
    python -m repro run fig9 --scale-factor 0.02
    python -m repro run fig7 --profile
    python -m repro bench [--full] [--output BENCH_sim_kernel.json]
    python -m repro lint [--self | --compositions | --functions | --dataflow]
                         [--only PASS ...] [paths ...]
                         [--format json|sarif] [--strict] [--no-cache]

Each experiment prints the same rows/series the paper reports (see
EXPERIMENTS.md for the paper-vs-measured comparison).  ``bench`` times
the simulation kernel's hot paths and records them in a JSON file so
perf regressions are visible across PRs (see docs/simulation.md).
``lint`` runs the static-analysis passes — purity verification of
registered compute functions, composition linting, whole-composition
dataflow analysis (RACE/CON/COST), and the determinism self-lint over
``src/repro`` itself (see docs/static_analysis.md).  Re-lints replay
unchanged results from ``.repro_lint_cache.json``.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    run_fig01,
    run_fig09_scaling,
    run_sec61,
    run_sec62,
    run_sec63,
    run_fig02,
    run_fig05,
    run_fig06,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig10_full,
    run_sec74,
    run_sec77,
    run_sec8_enforcement,
    run_sec8_static,
    run_sec8_tcb,
    run_table1,
)

EXPERIMENTS = {
    "table1": ("Table 1: sandbox latency breakdown (Morello + Linux)", None),
    "fig1": ("Fig 1: Knative committed vs active memory (Azure trace)", run_fig01),
    "fig2": ("Fig 2: Firecracker tail latency vs % hot requests", run_fig02),
    "fig5": ("Fig 5: sandbox-creation throughput, 0% hot", run_fig05),
    "fig6": ("Fig 6: 128x128 matmul throughput, 16 cores", run_fig06),
    "sec61": ("§6.1: fault tolerance, goodput/p99 under injected faults", run_sec61),
    "sec62": ("§6.2: scheduling policy sweep, goodput/p99 vs fleet size", run_sec62),
    "sec63": ("§6.3: gray failures, limplock severity vs latency/hedging detectors", run_sec63),
    "sec74": ("§7.4: composition overhead vs chain depth", run_sec74),
    "fig7": ("Fig 7: compute/comm split vs D-hybrid", run_fig07),
    "fig8": ("Fig 8: multiplexing mixed apps under bursty load", run_fig08),
    "fig9": ("Fig 9: SSB queries vs Athena", None),
    "fig9scale": ("§7.7 scaling: large inputs, 1..N Dandelion nodes vs Athena", run_fig09_scaling),
    "sec77": ("§7.7: Text2SQL workflow breakdown", run_sec77),
    "fig10": ("Fig 10: Azure trace, Dandelion vs FC+Knative", run_fig10),
    "fig10full": ("Fig 10 at 100x trace scale via the sharded simulator", None),
    "sec8": ("§8: TCB sizes + live enforcement checks", None),
}


def _run_one(name: str, args) -> None:
    started = time.time()
    if name == "table1":
        print(run_table1("morello").render())
        print()
        print(run_table1("linux").render())
    elif name == "fig9":
        print(run_fig09(scale_factor=args.scale_factor).render())
    elif name == "sec8":
        print(run_sec8_tcb().render())
        print()
        print(run_sec8_enforcement().render())
        print()
        print(run_sec8_static().render())
    elif name == "fig10full":
        result = run_fig10_full(
            scale=args.trace_scale,
            shards=args.shards,
            engine=args.engine,
            executor=args.executor,
        )
        print(result.render())
        for platform, stats in result.meta["platforms"].items():
            print(
                f"[{platform}: {stats['wall_seconds']}s wall, "
                f"{stats['events']:,} events "
                f"({stats['events_per_second']:,}/s) over "
                f"{stats['windows']} windows; per-shard stall "
                + ", ".join(
                    f"{s['stall_seconds']:.2f}s" for s in stats["shard_stats"]
                )
                + "]"
            )
    elif name in ("fig1", "fig10"):
        from .experiments.common import ascii_chart

        _description, runner = EXPERIMENTS[name]
        result = runner()
        print(result.render())
        if name == "fig1":
            series = {"committed MiB": result.column("committed_mib"),
                      "active MiB": result.column("active_mib")}
        else:
            series = {"firecracker MiB": result.column("firecracker_mib"),
                      "dandelion MiB": result.column("dandelion_mib")}
        for label, values in series.items():
            print()
            print(ascii_chart(values, label=f"{label} over the trace window"))
    else:
        _description, runner = EXPERIMENTS[name]
        print(runner().render())
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Dandelion reproduction: run paper experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments by name")
    run_parser.add_argument("names", nargs="+", help="experiment names, or 'all'")
    run_parser.add_argument(
        "--scale-factor", type=float, default=0.01,
        help="SSB scale factor for fig9 (default 0.01)",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 cumulative entries",
    )
    run_parser.add_argument(
        "--trace-scale", type=float, default=100.0,
        help="fig10full: trace scale vs the 100-function sample (default 100)",
    )
    run_parser.add_argument(
        "--shards", type=int, default=4,
        help="fig10full: shard count (KPIs are invariant to it; default 4)",
    )
    run_parser.add_argument(
        "--engine", choices=("lean", "classic"), default="lean",
        help="fig10full: shard kernel (default lean)",
    )
    run_parser.add_argument(
        "--executor", choices=("auto", "serial", "process"), default="auto",
        help="fig10full: shard executor (default auto: process when CPUs allow)",
    )
    bench_parser = subparsers.add_parser(
        "bench", help="benchmark the simulation kernel, emit a JSON report"
    )
    bench_parser.add_argument(
        "--full", action="store_true",
        help="also time the full fig5 sweep (minutes, not seconds)",
    )
    bench_parser.add_argument(
        "--output", default="BENCH_sim_kernel.json",
        help="JSON report path (default BENCH_sim_kernel.json); '-' to skip writing",
    )
    bench_parser.add_argument(
        "--only", nargs="+", default=None, metavar="GROUP",
        help="run only the named top-level bench groups (see BENCH_GROUPS)",
    )
    lint_parser = subparsers.add_parser(
        "lint", help="run the static-analysis passes (docs/static_analysis.md)"
    )
    lint_parser.add_argument(
        "--self", dest="lint_self", action="store_true",
        help="determinism self-lint over src/repro",
    )
    lint_parser.add_argument(
        "--functions", dest="lint_functions", action="store_true",
        help="static purity verification of the demo-app functions",
    )
    lint_parser.add_argument(
        "--compositions", dest="lint_compositions", action="store_true",
        help="composition linting of registered graphs and DSL blocks in paths",
    )
    lint_parser.add_argument(
        "--dataflow", dest="lint_dataflow", action="store_true",
        help="whole-composition dataflow analysis (RACE/CON/COST codes)",
    )
    lint_parser.add_argument(
        "--only", dest="lint_only", nargs="+", default=None, metavar="PASS",
        choices=("self", "functions", "compositions", "dataflow"),
        help="run exactly the named passes (overrides the scope flags)",
    )
    lint_parser.add_argument(
        "paths", nargs="*",
        help="files scanned for embedded composition blocks "
             "(with --compositions/--dataflow)",
    )
    lint_parser.add_argument(
        "--format", dest="output_format",
        choices=("text", "json", "sarif"), default="text",
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="fail on any non-baselined finding or stale baseline entry "
             "(CI mode); default fails on errors",
    )
    lint_parser.add_argument(
        "--baseline", default=None,
        help="baseline suppression file (default: the checked-in self-lint baseline)",
    )
    lint_parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from the current findings and exit "
             "(prunes stale entries for the passes that ran)",
    )
    lint_parser.add_argument(
        "--cache", dest="cache_path", default=".repro_lint_cache.json",
        metavar="PATH",
        help="incremental analysis cache file (default .repro_lint_cache.json)",
    )
    lint_parser.add_argument(
        "--no-cache", dest="no_cache", action="store_true",
        help="disable the incremental analysis cache",
    )
    args = parser.parse_args(argv)

    if args.command == "lint":
        from .analysis.runner import run_lint

        if args.lint_only is not None:
            selected = set(args.lint_only)
            run_self = "self" in selected
            run_functions = "functions" in selected
            run_compositions = "compositions" in selected
            run_dataflow = "dataflow" in selected
        else:
            # With no scope flags, run every pass.
            any_scope = (
                args.lint_self or args.lint_functions
                or args.lint_compositions or args.lint_dataflow
            )
            run_self = args.lint_self or not any_scope
            run_functions = args.lint_functions or not any_scope
            run_compositions = args.lint_compositions or not any_scope
            run_dataflow = args.lint_dataflow or not any_scope
        code, report = run_lint(
            lint_self_pass=run_self,
            lint_functions=run_functions,
            lint_compositions=run_compositions,
            lint_dataflow=run_dataflow,
            paths=args.paths,
            output_format=args.output_format,
            strict=args.strict,
            baseline_path=args.baseline,
            write_baseline=args.write_baseline,
            cache_path=None if args.no_cache else args.cache_path,
        )
        print(report)
        return code

    if args.command == "bench":
        from .experiments.bench_kernel import run_bench

        started = time.time()
        output = None if args.output == "-" else args.output
        try:
            report = run_bench(full=args.full, output=output, only=args.only)
        except KeyError as exc:
            print(f"bench: {exc.args[0]}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"cannot write bench report: {exc}", file=sys.stderr)
            return 1
        def _print_bench(name: str, numbers, indent: str = "") -> None:
            if not isinstance(numbers, dict):  # scalar (e.g. a speedup ratio)
                print(f"{indent}{name}: {numbers}")
                return
            if "seconds" not in numbers:  # nested group (dispatcher_data_plane)
                print(f"{indent}{name}:")
                for sub_name, sub_numbers in numbers.items():
                    _print_bench(sub_name, sub_numbers, indent + "  ")
                return
            rate = numbers.get("ops_per_second") or numbers.get("bytes_per_second")
            unit = "ops/s" if numbers.get("ops_per_second") else "B/s"
            suffix = f"  ({rate:,} {unit})" if rate else ""
            steps = numbers.get("sim_steps_per_invocation")
            if steps is not None:
                suffix += f"  [{steps} sim-steps/invocation]"
            print(f"{indent}{name:32} {numbers['seconds']:>9.3f}s{suffix}")

        for name, numbers in report["benchmarks"].items():
            _print_bench(name, numbers)
        if output:
            print(f"report written to {output}")
        print(f"[bench finished in {time.time() - started:.1f}s]")
        return 0

    if args.command == "list":
        for name, (description, _runner) in EXPERIMENTS.items():
            print(f"{name:8} {description}")
        return 0

    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        for name in names:
            _run_one(name, args)
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        return 0
    for name in names:
        _run_one(name, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
