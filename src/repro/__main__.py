"""Command-line entry point: run paper experiments by name.

Usage::

    python -m repro list
    python -m repro run table1 fig6 sec77
    python -m repro run all
    python -m repro run fig9 --scale-factor 0.02
    python -m repro run fig7 --profile
    python -m repro scenario list
    python -m repro scenario run sec61 --set faults.transient_rate=0.1
    python -m repro scenario sweep sec62 --axis policy=random,jsq \
                                         --axis fleet=4,8,16 --output m.json
    python -m repro scenario diff old.json new.json [--tolerance p99_ms=0.3]
    python -m repro bench [--full] [--output BENCH_sim_kernel.json]
    python -m repro lint [--self | --compositions | --functions | --dataflow
                          | --scenarios]
                         [--only PASS ...] [paths ...]
                         [--format json|sarif] [--strict] [--no-cache]

Each experiment prints the same rows/series the paper reports (see
EXPERIMENTS.md for the paper-vs-measured comparison); ``list``
descriptions come straight from the experiment modules' docstrings.
``scenario`` is the declarative harness (docs/scenarios.md): run one
spec file to a KPI record, sweep axes into a KPI matrix, diff records
within tolerance bands.  ``bench`` times the simulation kernel's hot
paths and records them in a JSON file so perf regressions are visible
across PRs (see docs/simulation.md).  ``lint`` runs the
static-analysis passes — purity verification of registered compute
functions, composition linting, whole-composition dataflow analysis
(RACE/CON/COST), scenario-spec validation (SCN), and the determinism
self-lint over ``src/repro`` itself (see docs/static_analysis.md).
Re-lints replay unchanged results from ``.repro_lint_cache.json``.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    run_fig01,
    run_fig09_scaling,
    run_sec61,
    run_sec62,
    run_sec63,
    run_fig02,
    run_fig05,
    run_fig06,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig10_full,
    run_sec74,
    run_sec77,
    run_sec8_enforcement,
    run_sec8_static,
    run_sec8_tcb,
    run_table1,
)

# name -> (defining module under repro.experiments, runner or None for
# multi-table/CLI-special experiments).  `list` descriptions are the
# modules' docstring first lines — one source of truth.
EXPERIMENTS = {
    "table1": ("table1_breakdown", None),
    "fig1": ("fig01_fig10_azure", run_fig01),
    "fig2": ("fig02_hot_ratio", run_fig02),
    "fig5": ("fig05_creation_throughput", run_fig05),
    "fig6": ("fig06_matmul_throughput", run_fig06),
    "sec61": ("sec61_fault_tolerance", run_sec61),
    "sec62": ("sec62_scheduling", run_sec62),
    "sec63": ("sec63_gray_failures", run_sec63),
    "sec74": ("sec74_composition_chain", run_sec74),
    "fig7": ("fig07_split_benefit", run_fig07),
    "fig8": ("fig08_multiplexing", run_fig08),
    "fig9": ("fig09_ssb_athena", None),
    "fig9scale": ("fig09_scaling", run_fig09_scaling),
    "sec77": ("sec77_text2sql", run_sec77),
    "fig10": ("fig01_fig10_azure", run_fig10),
    "fig10full": ("fig10_full", None),
    "sec8": ("sec8_security", None),
}


def experiment_description(name: str) -> str:
    """First docstring line of the experiment's defining module."""
    from importlib import import_module

    module_name, _runner = EXPERIMENTS[name]
    module = import_module(f".experiments.{module_name}", __package__)
    doc = (module.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else "(no description)"


def _run_one(name: str, args) -> None:
    started = time.time()
    if name == "table1":
        print(run_table1("morello").render())
        print()
        print(run_table1("linux").render())
    elif name == "fig9":
        print(run_fig09(scale_factor=args.scale_factor).render())
    elif name == "sec8":
        print(run_sec8_tcb().render())
        print()
        print(run_sec8_enforcement().render())
        print()
        print(run_sec8_static().render())
    elif name == "fig10full":
        result = run_fig10_full(
            scale=args.trace_scale,
            shards=args.shards,
            engine=args.engine,
            executor=args.executor,
        )
        print(result.render())
        for platform, stats in result.meta["platforms"].items():
            print(
                f"[{platform}: {stats['wall_seconds']}s wall, "
                f"{stats['events']:,} events "
                f"({stats['events_per_second']:,}/s) over "
                f"{stats['windows']} windows; per-shard stall "
                + ", ".join(
                    f"{s['stall_seconds']:.2f}s" for s in stats["shard_stats"]
                )
                + "]"
            )
    elif name in ("fig1", "fig10"):
        from .experiments.common import ascii_chart

        _module, runner = EXPERIMENTS[name]
        result = runner()
        print(result.render())
        if name == "fig1":
            series = {"committed MiB": result.column("committed_mib"),
                      "active MiB": result.column("active_mib")}
        else:
            series = {"firecracker MiB": result.column("firecracker_mib"),
                      "dandelion MiB": result.column("dandelion_mib")}
        for label, values in series.items():
            print()
            print(ascii_chart(values, label=f"{label} over the trace window"))
    else:
        _module, runner = EXPERIMENTS[name]
        print(runner().render())
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def _parse_assignments(pairs, what: str) -> dict:
    """``["a.b=1", ...]`` → ``{"a.b": typed value}`` (scenario CLI)."""
    from .scenario.sweep import parse_axis_value, resolve_axis

    out = {}
    for pair in pairs:
        key, eq, value = pair.partition("=")
        if not eq or not key.strip():
            raise SystemExit(f"{what} {pair!r}: expected KEY=VALUE")
        out[resolve_axis(key.strip())] = parse_axis_value(value)
    return out


def _scenario_command(args) -> int:
    import json

    from .scenario import (
        KpiRecord,
        MATRIX_SCHEMA,
        SpecError,
        bundled_specs,
        diff_matrices,
        diff_records,
        load_spec,
        parse_axis_argument,
        run_scenario,
        run_sweep,
    )

    if args.action == "list":
        for name in bundled_specs():
            spec = load_spec(name)
            print(f"{name:12} {spec.description or '(no description)'}")
        return 0

    if args.action == "diff":
        tolerances = {
            key: float(value) for key, value in
            _parse_assignments(args.tolerances, "--tolerance").items()
        }
        with open(args.old, "r", encoding="utf-8") as handle:
            old = json.load(handle)
        with open(args.new, "r", encoding="utf-8") as handle:
            new = json.load(handle)
        if old.get("schema") == MATRIX_SCHEMA or new.get("schema") == MATRIX_SCHEMA:
            ok = True
            for label, diff in diff_matrices(old, new, tolerances):
                if diff is None:
                    print(f"{label}: arm present on only one side")
                    ok = False
                    continue
                print(f"{label}: {diff.render()}")
                ok = ok and diff.ok
        else:
            diff = diff_records(
                KpiRecord.from_dict(old), KpiRecord.from_dict(new), tolerances
            )
            print(diff.render())
            ok = diff.ok
        print("diff: OK" if ok else "diff: FAILED")
        return 0 if ok else 1

    # run / sweep share spec loading and --set base overrides.
    try:
        spec = load_spec(args.spec)
        overrides = _parse_assignments(args.overrides, "--set")
        if overrides:
            spec = spec.with_overrides(overrides)
    except (SpecError, OSError) as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2

    if args.action == "run":
        run = run_scenario(
            spec, shards=args.shards, executor=args.executor, engine=args.engine
        )
        text = run.kpis.to_json()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"KPI record written to {args.output}")
        sys.stdout.write(text)
        return 0

    # sweep
    try:
        axes = [parse_axis_argument(axis) for axis in args.axes]
        matrix = run_sweep(
            spec, axes,
            shards=args.shards, executor=args.executor, engine=args.engine,
        )
    except SpecError as exc:
        print(f"scenario sweep: {exc}", file=sys.stderr)
        return 2
    from .experiments.common import render_table

    axis_names = [entry["axis"] for entry in matrix["axes"]]
    kpi_columns = ["goodput_rps", "success_pct", "p50_ms", "p99_ms", "cost_usd"]
    rows = [
        {**record["arm"],
         **{column: record["kpis"][column] for column in kpi_columns}}
        for record in matrix["records"]
    ]
    print(f"== scenario sweep: {spec.name} ({len(rows)} arms) ==")
    print(render_table(axis_names + kpi_columns, rows))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(matrix, handle, indent=2)
            handle.write("\n")
        print(f"KPI matrix written to {args.output}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Dandelion reproduction: run paper experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments by name")
    run_parser.add_argument("names", nargs="+", help="experiment names, or 'all'")
    run_parser.add_argument(
        "--scale-factor", type=float, default=0.01,
        help="SSB scale factor for fig9 (default 0.01)",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 cumulative entries",
    )
    run_parser.add_argument(
        "--trace-scale", type=float, default=100.0,
        help="fig10full: trace scale vs the 100-function sample (default 100)",
    )
    run_parser.add_argument(
        "--shards", type=int, default=4,
        help="fig10full: shard count (KPIs are invariant to it; default 4)",
    )
    run_parser.add_argument(
        "--engine", choices=("lean", "classic"), default="lean",
        help="fig10full: shard kernel (default lean)",
    )
    run_parser.add_argument(
        "--executor", choices=("auto", "serial", "process"), default="auto",
        help="fig10full: shard executor (default auto: process when CPUs allow)",
    )
    scenario_parser = subparsers.add_parser(
        "scenario",
        help="declarative scenario harness: run/sweep/diff spec files "
             "(docs/scenarios.md)",
    )
    scenario_subparsers = scenario_parser.add_subparsers(
        dest="action", required=True
    )
    scenario_subparsers.add_parser("list", help="list bundled scenario specs")
    for action in ("run", "sweep"):
        action_parser = scenario_subparsers.add_parser(
            action,
            help=(
                "run one spec, print its KPI record as JSON" if action == "run"
                else "cross-product axis sweep, print/write a KPI matrix"
            ),
        )
        action_parser.add_argument(
            "spec", help="bundled spec name (see `scenario list`) or TOML path"
        )
        action_parser.add_argument(
            "--set", dest="overrides", action="append", default=[],
            metavar="KEY=VALUE",
            help="override a spec field (dotted path or axis alias), repeatable",
        )
        if action == "sweep":
            action_parser.add_argument(
                "--axis", dest="axes", action="append", default=[],
                metavar="NAME=V1,V2,...", required=True,
                help="sweep axis (alias like policy/fleet or dotted path); "
                     "first axis is outermost",
            )
        action_parser.add_argument(
            "--output", default=None,
            help="also write the KPI record/matrix JSON to this path",
        )
        action_parser.add_argument(
            "--shards", type=int, default=1,
            help="streamed specs: shard count (KPIs invariant; default 1)",
        )
        action_parser.add_argument(
            "--executor", choices=("auto", "serial", "process"), default="auto",
            help="streamed specs: shard executor (default auto)",
        )
        action_parser.add_argument(
            "--engine", choices=("lean", "classic"), default="lean",
            help="streamed specs: shard kernel (default lean)",
        )
    diff_parser = scenario_subparsers.add_parser(
        "diff", help="compare two KPI records/matrices within tolerance bands"
    )
    diff_parser.add_argument("old", help="baseline KPI record/matrix JSON")
    diff_parser.add_argument("new", help="candidate KPI record/matrix JSON")
    diff_parser.add_argument(
        "--tolerance", dest="tolerances", action="append", default=[],
        metavar="METRIC=FRACTION",
        help="override a relative tolerance band (e.g. p99_ms=0.3), repeatable",
    )
    bench_parser = subparsers.add_parser(
        "bench", help="benchmark the simulation kernel, emit a JSON report"
    )
    bench_parser.add_argument(
        "--full", action="store_true",
        help="also time the full fig5 sweep (minutes, not seconds)",
    )
    bench_parser.add_argument(
        "--output", default="BENCH_sim_kernel.json",
        help="JSON report path (default BENCH_sim_kernel.json); '-' to skip writing",
    )
    bench_parser.add_argument(
        "--only", nargs="+", default=None, metavar="GROUP",
        help="run only the named top-level bench groups (see BENCH_GROUPS)",
    )
    lint_parser = subparsers.add_parser(
        "lint", help="run the static-analysis passes (docs/static_analysis.md)"
    )
    lint_parser.add_argument(
        "--self", dest="lint_self", action="store_true",
        help="determinism self-lint over src/repro",
    )
    lint_parser.add_argument(
        "--functions", dest="lint_functions", action="store_true",
        help="static purity verification of the demo-app functions",
    )
    lint_parser.add_argument(
        "--compositions", dest="lint_compositions", action="store_true",
        help="composition linting of registered graphs and DSL blocks in paths",
    )
    lint_parser.add_argument(
        "--dataflow", dest="lint_dataflow", action="store_true",
        help="whole-composition dataflow analysis (RACE/CON/COST codes)",
    )
    lint_parser.add_argument(
        "--scenarios", dest="lint_scenarios", action="store_true",
        help="scenario-spec validation over bundled + given specs (SCN codes)",
    )
    lint_parser.add_argument(
        "--only", dest="lint_only", nargs="+", default=None, metavar="PASS",
        choices=("self", "functions", "compositions", "dataflow", "scenarios"),
        help="run exactly the named passes (overrides the scope flags)",
    )
    lint_parser.add_argument(
        "paths", nargs="*",
        help="files scanned for embedded composition blocks "
             "(with --compositions/--dataflow) or scenario specs "
             "(*.toml, with --scenarios)",
    )
    lint_parser.add_argument(
        "--format", dest="output_format",
        choices=("text", "json", "sarif"), default="text",
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="fail on any non-baselined finding or stale baseline entry "
             "(CI mode); default fails on errors",
    )
    lint_parser.add_argument(
        "--baseline", default=None,
        help="baseline suppression file (default: the checked-in self-lint baseline)",
    )
    lint_parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from the current findings and exit "
             "(prunes stale entries for the passes that ran)",
    )
    lint_parser.add_argument(
        "--cache", dest="cache_path", default=".repro_lint_cache.json",
        metavar="PATH",
        help="incremental analysis cache file (default .repro_lint_cache.json)",
    )
    lint_parser.add_argument(
        "--no-cache", dest="no_cache", action="store_true",
        help="disable the incremental analysis cache",
    )
    args = parser.parse_args(argv)

    if args.command == "lint":
        from .analysis.runner import run_lint

        if args.lint_only is not None:
            selected = set(args.lint_only)
            run_self = "self" in selected
            run_functions = "functions" in selected
            run_compositions = "compositions" in selected
            run_dataflow = "dataflow" in selected
            run_scenarios = "scenarios" in selected
        else:
            # With no scope flags, run every pass.
            any_scope = (
                args.lint_self or args.lint_functions
                or args.lint_compositions or args.lint_dataflow
                or args.lint_scenarios
            )
            run_self = args.lint_self or not any_scope
            run_functions = args.lint_functions or not any_scope
            run_compositions = args.lint_compositions or not any_scope
            run_dataflow = args.lint_dataflow or not any_scope
            run_scenarios = args.lint_scenarios or not any_scope
        code, report = run_lint(
            lint_self_pass=run_self,
            lint_functions=run_functions,
            lint_compositions=run_compositions,
            lint_dataflow=run_dataflow,
            lint_scenarios=run_scenarios,
            paths=args.paths,
            output_format=args.output_format,
            strict=args.strict,
            baseline_path=args.baseline,
            write_baseline=args.write_baseline,
            cache_path=None if args.no_cache else args.cache_path,
        )
        print(report)
        return code

    if args.command == "bench":
        from .experiments.bench_kernel import run_bench

        started = time.time()
        output = None if args.output == "-" else args.output
        try:
            report = run_bench(full=args.full, output=output, only=args.only)
        except KeyError as exc:
            print(f"bench: {exc.args[0]}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"cannot write bench report: {exc}", file=sys.stderr)
            return 1
        def _print_bench(name: str, numbers, indent: str = "") -> None:
            if not isinstance(numbers, dict):  # scalar (e.g. a speedup ratio)
                print(f"{indent}{name}: {numbers}")
                return
            if "seconds" not in numbers:  # nested group (dispatcher_data_plane)
                print(f"{indent}{name}:")
                for sub_name, sub_numbers in numbers.items():
                    _print_bench(sub_name, sub_numbers, indent + "  ")
                return
            rate = numbers.get("ops_per_second") or numbers.get("bytes_per_second")
            unit = "ops/s" if numbers.get("ops_per_second") else "B/s"
            suffix = f"  ({rate:,} {unit})" if rate else ""
            steps = numbers.get("sim_steps_per_invocation")
            if steps is not None:
                suffix += f"  [{steps} sim-steps/invocation]"
            print(f"{indent}{name:32} {numbers['seconds']:>9.3f}s{suffix}")

        for name, numbers in report["benchmarks"].items():
            _print_bench(name, numbers)
        if output:
            print(f"report written to {output}")
        print(f"[bench finished in {time.time() - started:.1f}s]")
        return 0

    if args.command == "scenario":
        return _scenario_command(args)

    if args.command == "list":
        for name in EXPERIMENTS:
            print(f"{name:10} {experiment_description(name)}")
        return 0

    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        for name in names:
            _run_one(name, args)
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        return 0
    for name in names:
        _run_one(name, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
