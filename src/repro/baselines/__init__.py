"""Baseline platforms: Firecracker, gVisor, Wasmtime, Hyperlight, D-hybrid."""

from .base import (
    FaasPlatform,
    FixedHotRatioPolicy,
    FunctionModel,
    KeepAlivePolicy,
    Phase,
    PlatformSpec,
    RequestRecord,
    Sandbox,
    compute_phase,
    io_phase,
)
from .dhybrid import DHybridPlatform
from .specs import (
    FIRECRACKER,
    FIRECRACKER_SNAPSHOT,
    GVISOR,
    HYPERLIGHT,
    HYPERLIGHT_MATMUL,
    WASM_COMPUTE_SLOWDOWN,
    WASMTIME,
)

__all__ = [
    "FaasPlatform",
    "FixedHotRatioPolicy",
    "FunctionModel",
    "KeepAlivePolicy",
    "Phase",
    "PlatformSpec",
    "RequestRecord",
    "Sandbox",
    "compute_phase",
    "io_phase",
    "DHybridPlatform",
    "FIRECRACKER",
    "FIRECRACKER_SNAPSHOT",
    "GVISOR",
    "HYPERLIGHT",
    "HYPERLIGHT_MATMUL",
    "WASM_COMPUTE_SLOWDOWN",
    "WASMTIME",
]
