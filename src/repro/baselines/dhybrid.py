"""Dandelion-hybrid (D-hybrid) — the §7.5 ablation baseline.

"To measure the impact of Dandelion's programming model, while keeping
the rest of the system the same, we implement Dandelion-hybrid.  It
uses the same system architecture and isolation backends as Dandelion,
but supports running a composition as a single 'hybrid' function,
allowing opening sockets for communication."

A hybrid function bundles its compute and I/O phases in one sandbox, so
the platform can no longer schedule them separately: the operator must
pick a static concurrency — *threads per core* (tpc), pinned or not —
and the right choice depends on the workload mix:

* ``pinned`` with tpc 1: each task owns a core for its entire lifetime,
  perfect for pure compute (no context switches) but the core idles
  during I/O phases;
* unpinned with tpc k: up to ``k × cores`` tasks run concurrently over
  a processor-shared CPU — I/O overlaps, but compute phases now contend
  and pay context-switch overhead.

Dandelion proper (the engine split + PI controller) needs no such
static choice — that is the comparison Fig 7 draws.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..backends.base import IsolationBackend, create_backend
from ..composition.registry import DEFAULT_BINARY_SIZE, FunctionBinary
from ..sim.core import Environment, Event, _PROCESSED
from ..sim.cpu import ProcessorSharingCpu
from ..sim.metrics import LatencyRecorder
from ..sim.resources import Resource
from .base import FunctionModel, Phase, RequestRecord

__all__ = ["DHybridPlatform"]

_CONTEXT_SWITCH_SECONDS = 5e-6


def _creation_placeholder(vfs):
    """Hybrid functions are opaque blobs; only their cost profile matters."""


class DHybridPlatform:
    """Dandelion's architecture running monolithic hybrid functions."""

    def __init__(
        self,
        env: Environment,
        cores: int,
        threads_per_core: int = 1,
        pinned: bool = False,
        backend: Optional[IsolationBackend] = None,
    ):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if threads_per_core < 1:
            raise ValueError("threads_per_core must be >= 1")
        if pinned and threads_per_core != 1:
            raise ValueError("pinning requires exactly one thread per core")
        self.env = env
        self.cores = cores
        self.threads_per_core = threads_per_core
        self.pinned = pinned
        self.backend = backend or create_backend("kvm", "linux")
        self._functions: dict[str, FunctionModel] = {}
        self._binaries: dict[str, FunctionBinary] = {}
        # Sandbox-creation cost per function is load-independent; cache
        # it at registration instead of recomputing per request.
        self._creation_seconds: dict[str, float] = {}
        # Pinned tasks hold their core through creation and every phase,
        # so the whole residency collapses into one timeout.
        self._pinned_residency: dict[str, float] = {}
        if pinned:
            self._core_pool = Resource(env, capacity=cores)
            self._cpu = None
        else:
            self._core_pool = Resource(env, capacity=cores * threads_per_core)
            # More threads per core means more context switches and
            # cache pollution while oversubscribed.
            efficiency = 1.0 - min(0.3, 0.05 * (threads_per_core - 1))
            self._cpu = ProcessorSharingCpu(
                env,
                cores,
                switch_overhead_seconds=_CONTEXT_SWITCH_SECONDS,
                oversubscribed_efficiency=efficiency,
            )
        self.latencies = LatencyRecorder(f"d-hybrid-tpc{threads_per_core}{'-pinned' if pinned else ''}")
        self.records: list[RequestRecord] = []

    def register_function(self, name: str, phases: Iterable[Phase]) -> FunctionModel:
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        function = FunctionModel(name, tuple(phases))
        self._functions[name] = function
        binary = FunctionBinary(
            name=name,
            entry_point=_creation_placeholder,
            binary_size=DEFAULT_BINARY_SIZE,
        )
        self._binaries[name] = binary
        creation = self.backend.creation_seconds(binary)
        self._creation_seconds[name] = creation
        self._pinned_residency[name] = creation + sum(
            phase.seconds for phase in function.phases
        )
        return function

    def request(self, function_name: str):
        function = self._functions.get(function_name)
        if function is None:
            raise KeyError(f"unknown function {function_name!r}")
        return self._serve(function)

    def _serve(self, function: FunctionModel) -> Event:
        """Run one request as a callback chain over heap events.

        Requests dominate every loaded baseline sweep, so instead of a
        generator process per request (an extra initialization event,
        a process-end event and a generator resume per step) the same
        admission → creation → phases → release sequence is chained
        through event callbacks.  Virtual-time behaviour is identical:
        each callback is appended exactly where the process resume
        callback used to sit.
        """
        env = self.env
        completion = Event(env)
        arrived_at = env.now
        admission = self._core_pool.request()

        def finish():
            self._core_pool.release(admission)
            record = RequestRecord(function.name, arrived_at, env.now, cold=True)
            self.records.append(record)
            self.latencies.record(record.latency)
            completion.succeed(record)

        if self.pinned:
            def start(_event=None):
                # The task owns its core outright: creation, compute and
                # even I/O waits all elapse while holding the core, so
                # the whole residency is one pre-summed timeout.
                timer = env.timeout(self._pinned_residency[function.name])
                timer.callbacks.append(lambda _e: finish())
        else:
            phases = function.phases

            def advance(index):
                if index >= len(phases):
                    finish()
                    return
                phase = phases[index]
                if phase.kind == "compute":
                    step = self._cpu.consume(phase.seconds)
                else:
                    step = env.timeout(phase.seconds)
                step.callbacks.append(lambda _e, i=index + 1: advance(i))

            def start(_event=None):
                step = self._cpu.consume(self._creation_seconds[function.name])
                step.callbacks.append(lambda _e: advance(0))

        if admission._state == _PROCESSED:
            start()
        else:
            admission.callbacks.append(start)
        return completion
