"""Dandelion-hybrid (D-hybrid) — the §7.5 ablation baseline.

"To measure the impact of Dandelion's programming model, while keeping
the rest of the system the same, we implement Dandelion-hybrid.  It
uses the same system architecture and isolation backends as Dandelion,
but supports running a composition as a single 'hybrid' function,
allowing opening sockets for communication."

A hybrid function bundles its compute and I/O phases in one sandbox, so
the platform can no longer schedule them separately: the operator must
pick a static concurrency — *threads per core* (tpc), pinned or not —
and the right choice depends on the workload mix:

* ``pinned`` with tpc 1: each task owns a core for its entire lifetime,
  perfect for pure compute (no context switches) but the core idles
  during I/O phases;
* unpinned with tpc k: up to ``k × cores`` tasks run concurrently over
  a processor-shared CPU — I/O overlaps, but compute phases now contend
  and pay context-switch overhead.

Dandelion proper (the engine split + PI controller) needs no such
static choice — that is the comparison Fig 7 draws.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..backends.base import IsolationBackend, create_backend
from ..composition.registry import DEFAULT_BINARY_SIZE, FunctionBinary
from ..sim.core import Environment
from ..sim.cpu import ProcessorSharingCpu
from ..sim.metrics import LatencyRecorder
from ..sim.resources import Resource
from .base import FunctionModel, Phase, RequestRecord

__all__ = ["DHybridPlatform"]

_CONTEXT_SWITCH_SECONDS = 5e-6


def _creation_placeholder(vfs):
    """Hybrid functions are opaque blobs; only their cost profile matters."""


class DHybridPlatform:
    """Dandelion's architecture running monolithic hybrid functions."""

    def __init__(
        self,
        env: Environment,
        cores: int,
        threads_per_core: int = 1,
        pinned: bool = False,
        backend: Optional[IsolationBackend] = None,
    ):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if threads_per_core < 1:
            raise ValueError("threads_per_core must be >= 1")
        if pinned and threads_per_core != 1:
            raise ValueError("pinning requires exactly one thread per core")
        self.env = env
        self.cores = cores
        self.threads_per_core = threads_per_core
        self.pinned = pinned
        self.backend = backend or create_backend("kvm", "linux")
        self._functions: dict[str, FunctionModel] = {}
        self._binaries: dict[str, FunctionBinary] = {}
        if pinned:
            self._core_pool = Resource(env, capacity=cores)
            self._cpu = None
        else:
            self._core_pool = Resource(env, capacity=cores * threads_per_core)
            # More threads per core means more context switches and
            # cache pollution while oversubscribed.
            efficiency = 1.0 - min(0.3, 0.05 * (threads_per_core - 1))
            self._cpu = ProcessorSharingCpu(
                env,
                cores,
                switch_overhead_seconds=_CONTEXT_SWITCH_SECONDS,
                oversubscribed_efficiency=efficiency,
            )
        self.latencies = LatencyRecorder(f"d-hybrid-tpc{threads_per_core}{'-pinned' if pinned else ''}")
        self.records: list[RequestRecord] = []

    def register_function(self, name: str, phases: Iterable[Phase]) -> FunctionModel:
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        function = FunctionModel(name, tuple(phases))
        self._functions[name] = function
        self._binaries[name] = FunctionBinary(
            name=name,
            entry_point=_creation_placeholder,
            binary_size=DEFAULT_BINARY_SIZE,
        )
        return function

    def request(self, function_name: str):
        function = self._functions.get(function_name)
        if function is None:
            raise KeyError(f"unknown function {function_name!r}")
        return self.env.process(self._serve(function))

    def _serve(self, function: FunctionModel):
        arrived_at = self.env.now
        creation = self.backend.creation_seconds(self._binaries[function.name])
        admission = self._core_pool.request()
        yield admission
        try:
            if self.pinned:
                # The task owns its core outright: creation, compute and
                # even I/O waits all elapse while holding the core.
                yield self.env.timeout(creation)
                for phase in function.phases:
                    yield self.env.timeout(phase.seconds)
            else:
                yield self._cpu.consume(creation)
                for phase in function.phases:
                    if phase.kind == "compute":
                        yield self._cpu.consume(phase.seconds)
                    else:
                        yield self.env.timeout(phase.seconds)
        finally:
            self._core_pool.release(admission)
        record = RequestRecord(function.name, arrived_at, self.env.now, cold=True)
        self.records.append(record)
        self.latencies.record(record.latency)
        return record
