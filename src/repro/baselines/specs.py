"""Calibrated cost profiles for the baseline platforms (§7.1–§7.3).

Sources, all from the paper's own measurements:

* **Firecracker** — fresh MicroVM boot "takes over 150ms" (§7.2);
  snapshot restore keeps >10 ms on the critical path, of which ">8ms
  [is] spent on the snapshot demand paging and guest-host connection
  re-establishment" (§1, §2.3); snapshot-restore throughput tops out
  near 120 RPS on the 4-core Morello-class setup, consistent with a
  largely serial ~12 ms restore.
* **gVisor** — "performed worse than FC with snapshots" (§7.2);
  container creation is a few hundred ms and KVM-platform syscall
  interception taxes compute.
* **Spin/Wasmtime** — pooled allocation and pre-instantiation make
  instance startup lightweight (peaks at 7000 RPS on 4 cores → ~0.57 ms
  per request of setup+work); compute runs slower than native (§7.3
  Fig 6 shows WT saturating at 2600 RPS vs Dandelion-KVM's 4800 on the
  same matmul).
* **Hyperlight Wasm** — 9.1 ms average unloaded cold start: ProtoWasm
  sandbox launch 2.8 ms + Wasmtime runtime load 4.2 ms + module load
  2.1 ms (§7.2); for the 128×128 matmul configuration the measured
  stages are 2.6 + 12.1 + 4.7 ms with 8.1 ms execution (§7.3).
"""

from __future__ import annotations

from .base import MiB, PlatformSpec

__all__ = [
    "FIRECRACKER",
    "FIRECRACKER_SNAPSHOT",
    "GVISOR",
    "WASMTIME",
    "HYPERLIGHT",
    "HYPERLIGHT_MATMUL",
    "WASM_COMPUTE_SLOWDOWN",
]

# Wasm-vs-native compute gap for Wasmtime (Jangda et al. report
# 1.45-2.08x average): Fig 6's saturation ratio (2600 vs 4800 RPS at
# equal cores) implies this factor once per-request overheads are
# accounted for.  Hyperlight's measured matmul (8.1 ms vs ~3 ms native)
# implies a larger 2.7x for its toolchain.
WASM_COMPUTE_SLOWDOWN = 1.85

FIRECRACKER = PlatformSpec(
    name="firecracker",
    cold_start_seconds=0.150,
    hot_start_seconds=0.0014,      # HTTP relay hop + virtio round trip into the VM
    compute_slowdown=1.05,         # virtualization tax
    sandbox_memory_bytes=128 * MiB,
    context_switch_seconds=5e-6,
)

FIRECRACKER_SNAPSHOT = PlatformSpec(
    name="firecracker-snapshot",
    cold_start_seconds=0.012,      # restore: >8ms paging + connection + create
    hot_start_seconds=0.0014,
    compute_slowdown=1.05,
    sandbox_memory_bytes=128 * MiB,
    context_switch_seconds=5e-6,
    # Demand paging grows with the guest footprint; with the default
    # 128 MiB sandbox this adds ~15 ms, putting the restore-limited
    # throughput near the paper's ~120 RPS on 4 cores.
    cold_paging_seconds_per_mib=0.00012,
)

GVISOR = PlatformSpec(
    name="gvisor",
    cold_start_seconds=0.350,
    hot_start_seconds=0.0012,
    compute_slowdown=1.3,          # Sentry syscall interception
    sandbox_memory_bytes=96 * MiB,
    context_switch_seconds=6e-6,
)

WASMTIME = PlatformSpec(
    name="wasmtime",
    cold_start_seconds=0.00045,    # pooled allocation + pre-instantiation
    hot_start_seconds=0.00025,
    compute_slowdown=WASM_COMPUTE_SLOWDOWN,
    sandbox_memory_bytes=8 * MiB,  # pooled instance slot
    context_switch_seconds=3e-6,   # Tokio task hops
)

HYPERLIGHT = PlatformSpec(
    name="hyperlight",
    cold_start_seconds=0.0091,     # 2.8 + 4.2 + 2.1 ms (§7.2 configuration)
    hot_start_seconds=0.0005,
    compute_slowdown=WASM_COMPUTE_SLOWDOWN,
    sandbox_memory_bytes=16 * MiB,
    context_switch_seconds=3e-6,
)

# The 128x128-matmul configuration needs bigger guest buffers, making
# every load stage slower (§7.3): 2.6 + 12.1 + 4.7 ms before execution.
HYPERLIGHT_MATMUL = PlatformSpec(
    name="hyperlight-matmul",
    cold_start_seconds=0.0194,
    hot_start_seconds=0.0005,
    compute_slowdown=2.7,          # 8.1 ms measured vs ~3 ms native
    sandbox_memory_bytes=24 * MiB,
    context_switch_seconds=3e-6,
)
