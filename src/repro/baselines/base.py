"""Generic traditional-FaaS platform model (the paper's baselines).

Firecracker, gVisor, Spin/Wasmtime and Hyperlight all share the same
architecture from the evaluation's point of view (§7.1 baselines): an
HTTP relay routes each request to a *sandbox*; hot requests reuse a
running sandbox, cold requests pay sandbox creation on the critical
path; all sandboxes are multiplexed over the machine's cores by the OS
scheduler (processor sharing + context switches).  What differs per
platform is the cost profile: cold-start latency, per-request overhead,
compute slowdown, and per-sandbox memory footprint.

Functions are modelled as sequences of *phases* — ``compute`` phases
burn CPU (scaled by the platform's slowdown), ``io`` phases block
without using CPU — which is how the mixed compute/I-O workloads of
§7.5–7.6 are expressed on the baselines.

Two sandbox policies cover the paper's setups (both live in the
unified scheduling layer, :mod:`repro.sched.sandbox`, and are
re-exported here for compatibility):

* :class:`FixedHotRatioPolicy` — each request is *hot* with fixed
  probability (the 97%-hot setting justified by the Azure trace, §7.3);
* :class:`KeepAlivePolicy` — sandboxes stay warm for a keep-alive
  window after each request (the Knative-autoscaling memory behaviour
  of Figs 1 and 10).

The per-request hot/cold/reuse decision routes through
``policy.decide(SandboxSnapshot) -> SandboxChoice`` (docs/scheduling.md);
the platform actuates the choice — scanning its idle pool, charging
memory, arming reap timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..sched.sandbox import FixedHotRatioPolicy, KeepAlivePolicy, SandboxPolicy
from ..sched.snapshots import SandboxSnapshot
from ..sim.core import Environment
from ..sim.cpu import ProcessorSharingCpu
from ..sim.distributions import Rng
from ..sim.metrics import LatencyRecorder, TimeSeries

__all__ = [
    "Phase",
    "compute_phase",
    "io_phase",
    "PlatformSpec",
    "FunctionModel",
    "Sandbox",
    "FixedHotRatioPolicy",
    "KeepAlivePolicy",
    "FaasPlatform",
    "RequestRecord",
]

MiB = 1024 * 1024


@dataclass(frozen=True)
class Phase:
    """One stage of a function's execution."""

    kind: str      # "compute" or "io"
    seconds: float

    def __post_init__(self):
        if self.kind not in ("compute", "io"):
            raise ValueError(f"unknown phase kind {self.kind!r}")
        if self.seconds < 0:
            raise ValueError("phase duration must be non-negative")


def compute_phase(seconds: float) -> Phase:
    return Phase("compute", seconds)


def io_phase(seconds: float) -> Phase:
    return Phase("io", seconds)


@dataclass(frozen=True)
class PlatformSpec:
    """Cost profile of one baseline platform."""

    name: str
    cold_start_seconds: float
    hot_start_seconds: float
    compute_slowdown: float = 1.0
    sandbox_memory_bytes: int = 128 * MiB
    context_switch_seconds: float = 5e-6
    # Whether cold-start work burns CPU (VM boot does; some of snapshot
    # restore is I/O but the paper attributes FC saturation to CPU
    # contention between serving and creation, so we charge it).
    cold_start_uses_cpu: bool = True
    # Extra cold-start cost per MiB of sandbox memory: snapshot restores
    # demand-page the guest working set on first touch (§2.3 attributes
    # >8ms to "snapshot demand paging and guest-host connection
    # re-establishment", growing with the function's footprint).
    cold_paging_seconds_per_mib: float = 0.0

    def cold_start_total_seconds(self, memory_bytes: int) -> float:
        return self.cold_start_seconds + self.cold_paging_seconds_per_mib * (
            memory_bytes / MiB
        )


@dataclass(frozen=True)
class FunctionModel:
    """A function as the baseline platforms see it: phases + memory."""

    name: str
    phases: tuple[Phase, ...]
    memory_bytes: Optional[int] = None  # overrides the spec default

    @property
    def compute_seconds(self) -> float:
        return sum(p.seconds for p in self.phases if p.kind == "compute")

    @property
    def io_seconds(self) -> float:
        return sum(p.seconds for p in self.phases if p.kind == "io")


@dataclass
class Sandbox:
    """One live sandbox (MicroVM / container / Wasm instance)."""

    function_name: str
    memory_bytes: int
    created_at: float
    busy: bool = True
    expires_at: float = float("inf")
    generation: int = 0


@dataclass(frozen=True)
class RequestRecord:
    """Telemetry for one completed request."""

    function_name: str
    arrived_at: float
    finished_at: float
    cold: bool

    @property
    def latency(self) -> float:
        return self.finished_at - self.arrived_at


class FaasPlatform:
    """A baseline FaaS worker node."""

    def __init__(
        self,
        env: Environment,
        spec: PlatformSpec,
        cores: int,
        policy: SandboxPolicy,
        rng: Optional[Rng] = None,
    ):
        self.env = env
        self.spec = spec
        self.cores = cores
        self.policy = policy
        self.rng = rng or Rng(0)
        self.cpu = ProcessorSharingCpu(
            env, cores, switch_overhead_seconds=spec.context_switch_seconds
        )
        self._functions: dict[str, FunctionModel] = {}
        # Idle (warm) sandboxes per function, newest last.
        self._idle: dict[str, list[Sandbox]] = {}
        self._standing_memory = 0
        self._dynamic_memory = 0
        self._active_memory = 0
        self.committed_series = TimeSeries("committed_bytes")
        self.active_series = TimeSeries("active_bytes")
        self.committed_series.record(env.now, 0)
        self.active_series.record(env.now, 0)
        self.latencies = LatencyRecorder(spec.name)
        self.per_function_latencies: dict[str, LatencyRecorder] = {}
        self.records: list[RequestRecord] = []
        self.cold_requests = 0
        self.hot_requests = 0

    # -- registration ---------------------------------------------------------

    def register_function(
        self,
        name: str,
        phases: Iterable[Phase],
        memory_bytes: Optional[int] = None,
    ) -> FunctionModel:
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        function = FunctionModel(name, tuple(phases), memory_bytes)
        self._functions[name] = function
        self._idle[name] = []
        self.per_function_latencies[name] = LatencyRecorder(name)
        standing = self.policy.standing_sandboxes(function)
        if standing:
            self._standing_memory += standing * self._memory_of(function)
            self._record_memory()
        return function

    def _memory_of(self, function: FunctionModel) -> int:
        return function.memory_bytes or self.spec.sandbox_memory_bytes

    # -- memory accounting ---------------------------------------------------

    @property
    def committed_bytes(self) -> int:
        return self._standing_memory + self._dynamic_memory

    @property
    def active_bytes(self) -> int:
        return self._active_memory

    def _record_memory(self) -> None:
        self.committed_series.record(self.env.now, self.committed_bytes)
        self.active_series.record(self.env.now, self._active_memory)

    # -- request path ----------------------------------------------------------

    def request(self, function_name: str):
        """Start serving one request; returns the simulation process."""
        function = self._functions.get(function_name)
        if function is None:
            raise KeyError(f"unknown function {function_name!r}")
        return self.env.process(self._serve(function))

    def _serve(self, function: FunctionModel):
        arrived_at = self.env.now
        sandbox, cold = self._acquire(function)
        memory = self._memory_of(function)
        self._active_memory += memory
        if cold:
            self.cold_requests += 1
            if sandbox is None:
                sandbox = Sandbox(function.name, memory, created_at=self.env.now)
                self._dynamic_memory += memory
            self._record_memory()
            cold_seconds = self.spec.cold_start_total_seconds(memory)
            if self.spec.cold_start_uses_cpu:
                yield self.cpu.consume(cold_seconds)
            else:
                yield self.env.timeout(cold_seconds)
        else:
            self.hot_requests += 1
            self._record_memory()
            yield self.cpu.consume(self.spec.hot_start_seconds)

        for phase in function.phases:
            if phase.kind == "compute":
                yield self.cpu.consume(phase.seconds * self.spec.compute_slowdown)
            else:
                yield self.env.timeout(phase.seconds)

        self._active_memory -= memory
        self._release(function, sandbox, was_cold=cold)
        finished_at = self.env.now
        record = RequestRecord(function.name, arrived_at, finished_at, cold)
        self.records.append(record)
        self.latencies.record(record.latency)
        self.per_function_latencies[function.name].record(record.latency)
        return record

    def _acquire(self, function: FunctionModel):
        """Returns (sandbox_or_None, cold?).

        The hot/cold/reuse *decision* is the policy's
        (``decide(SandboxSnapshot) -> SandboxChoice``); this method
        actuates it against the idle pool.
        """
        idle = self._idle[function.name]
        choice = self.policy.decide(
            SandboxSnapshot(self.env.now, function, len(idle))
        )
        kind = choice.kind
        if kind == "hot":
            # Served by the standing hot pool; no sandbox object changes.
            return None, False
        if kind == "cold":
            return None, True
        # "reuse": take the newest unexpired idle sandbox, else cold-start.
        while idle:
            sandbox = idle.pop()
            if sandbox.expires_at > self.env.now:
                sandbox.busy = True
                sandbox.generation += 1
                return sandbox, False
            # Expired but not yet reaped; reclaim now.
            self._dynamic_memory -= sandbox.memory_bytes
        return None, True

    def _release(self, function: FunctionModel, sandbox: Optional[Sandbox], was_cold: bool):
        if not self.policy.keep_after_use():
            if was_cold and sandbox is not None:
                self._dynamic_memory -= sandbox.memory_bytes
            self._record_memory()
            return
        assert sandbox is not None
        sandbox.busy = False
        sandbox.expires_at = self.env.now + self.policy.keep_alive_seconds
        generation = sandbox.generation
        self._idle[function.name].append(sandbox)
        # Reap via a direct timer callback: a generator process per
        # released sandbox (Process + Initialize + completion event)
        # is measurable churn on keep-alive-heavy runs (Fig 1/Fig 10
        # Azure replays release a sandbox per request).
        timer = self.env.timeout(self.policy.keep_alive_seconds)
        timer.callbacks.append(
            lambda _evt: self._reap(function.name, sandbox, generation)
        )
        self._record_memory()

    def _reap(self, function_name: str, sandbox: Sandbox, generation: int) -> None:
        idle = self._idle[function_name]
        if sandbox in idle and sandbox.generation == generation:
            idle.remove(sandbox)
            self._dynamic_memory -= sandbox.memory_bytes
            self._record_memory()

    # -- reporting --------------------------------------------------------------

    def cold_fraction(self) -> float:
        total = self.cold_requests + self.hot_requests
        return self.cold_requests / total if total else 0.0

    def warm_sandbox_count(self) -> int:
        return sum(len(idle) for idle in self._idle.values())
