"""Data-plane primitives: items, sets, memory contexts, virtual FS."""

from .context import (
    PAGE_SIZE,
    WIRE_VERSION,
    ContextError,
    MemoryContext,
    parse_sets,
    serialize_sets,
    serialized_size,
)
from .items import (
    DataItem,
    DataSet,
    group_items_by_key,
    is_data_set,
    total_size,
)
from .lazy import LazyDataItem, LazyDataSet, parse_sets_lazy
from .vfs import VfsError, VirtualFile, VirtualFileSystem

__all__ = [
    "PAGE_SIZE",
    "WIRE_VERSION",
    "ContextError",
    "MemoryContext",
    "parse_sets",
    "parse_sets_lazy",
    "serialize_sets",
    "serialized_size",
    "DataItem",
    "DataSet",
    "LazyDataItem",
    "LazyDataSet",
    "group_items_by_key",
    "is_data_set",
    "total_size",
    "VfsError",
    "VirtualFile",
    "VirtualFileSystem",
]
