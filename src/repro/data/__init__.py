"""Data-plane primitives: items, sets, memory contexts, virtual FS."""

from .context import (
    PAGE_SIZE,
    ContextError,
    MemoryContext,
    parse_sets,
    serialize_sets,
    serialized_size,
)
from .items import DataItem, DataSet, total_size
from .vfs import VfsError, VirtualFile, VirtualFileSystem

__all__ = [
    "PAGE_SIZE",
    "ContextError",
    "MemoryContext",
    "parse_sets",
    "serialize_sets",
    "serialized_size",
    "DataItem",
    "DataSet",
    "total_size",
    "VfsError",
    "VirtualFile",
    "VirtualFileSystem",
]
