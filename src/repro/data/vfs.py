"""In-memory virtual filesystem — the hlibc/hlibc++ interface (§4.1).

Compute functions cannot issue system calls; instead Dandelion's custom
libc exposes "a userspace in-memory virtual filesystem [that]
represents function input sets and output sets as folders, with items
as files within these folders".  Functions read inputs and write
outputs as ordinary file operations; when the function exits, "hlibc
automatically adds all files in folders that are output sets as output
items".

This module reproduces that interface: a :class:`VirtualFileSystem` is
constructed from the function's input sets, mounted at ``/in/<set>``,
and collects anything written under ``/out/<set>`` into output sets.
"""

from __future__ import annotations

import io
import posixpath
from typing import Optional

from .items import DataItem, DataSet

__all__ = ["VirtualFileSystem", "VfsError", "VirtualFile"]

_IN_ROOT = "/in"
_OUT_ROOT = "/out"


class VfsError(OSError):
    """Filesystem-level error (missing file, bad path, read-only...)."""


class VirtualFile(io.BytesIO):
    """A writable in-memory file that publishes its bytes on close."""

    def __init__(self, vfs: "VirtualFileSystem", path: str, initial: bytes = b"", key: Optional[str] = None):
        super().__init__(initial)
        if initial:
            self.seek(0, io.SEEK_END)
        self._vfs = vfs
        self._path = path
        self.key = key

    def close(self) -> None:
        if not self.closed:
            self._vfs._publish(self._path, self.getvalue(), self.key)
        super().close()


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise VfsError(f"paths must be absolute, got {path!r}")
    clean = posixpath.normpath(path)
    if clean.startswith("/.."):
        raise VfsError(f"path escapes the filesystem root: {path!r}")
    return clean


def _split(path: str) -> tuple[str, str, str]:
    """Split ``/root/set/item`` into its three components."""
    parts = [p for p in path.split("/") if p]
    if len(parts) != 3:
        raise VfsError(f"expected /in|/out/<set>/<item>, got {path!r}")
    return "/" + parts[0], parts[1], parts[2]


class VirtualFileSystem:
    """The per-invocation filesystem view a compute function sees.

    Input sets appear read-only under ``/in/<set>/<item>``.  Output
    folders under ``/out/<set>/`` accept writes; on
    :meth:`collect_outputs`, every file in a declared output-set folder
    becomes an output item.
    """

    def __init__(self, input_sets: list[DataSet], output_set_names: list[str]):
        self._inputs: dict[str, DataSet] = {}
        for data_set in input_sets:
            if data_set.ident in self._inputs:
                raise VfsError(f"duplicate input set {data_set.ident!r}")
            self._inputs[data_set.ident] = data_set
        self._output_names = list(output_set_names)
        if len(set(self._output_names)) != len(self._output_names):
            raise VfsError("duplicate output set names")
        # path -> (bytes, key); plus a per-set item-name index so
        # listdir/collect_outputs avoid rescanning every written path.
        self._output_files: dict[str, tuple[bytes, Optional[str]]] = {}
        self._outputs_by_set: dict[str, dict[str, str]] = {
            name: {} for name in self._output_names
        }

    # -- reading ----------------------------------------------------------

    def open(self, path: str, mode: str = "r", key: Optional[str] = None):
        """Open a file.

        ``r``/``rb`` read an input (or previously written output) item;
        ``w``/``wb`` create a file in an output folder; ``a``/``ab``
        append.  Text modes decode/encode UTF-8.  ``key`` tags the
        written item with a grouping key.
        """
        clean = _normalize(path)
        binary = mode.endswith("b")
        base_mode = mode.rstrip("b")
        if base_mode == "r":
            data = self.read_bytes(clean)
            return io.BytesIO(data) if binary else io.StringIO(data.decode("utf-8"))
        if base_mode in ("w", "a"):
            root, set_name, _item = _split(clean)
            if root != _OUT_ROOT:
                raise VfsError(f"cannot write outside {_OUT_ROOT}: {path!r}")
            if set_name not in self._output_names:
                raise VfsError(f"{set_name!r} is not a declared output set")
            initial = b""
            if base_mode == "a" and clean in self._output_files:
                initial = self._output_files[clean][0]
            raw = VirtualFile(self, clean, initial, key=key)
            return raw if binary else _TextWriter(raw)
        raise VfsError(f"unsupported mode {mode!r}")

    def read_bytes(self, path: str) -> bytes:
        """Read a whole file as bytes."""
        clean = _normalize(path)
        root, set_name, item_name = _split(clean)
        if root == _IN_ROOT:
            data_set = self._inputs.get(set_name)
            if data_set is None:
                raise VfsError(f"no input set {set_name!r}")
            try:
                return data_set.item(item_name).data
            except KeyError:
                raise VfsError(f"no file {clean!r}") from None
        if root == _OUT_ROOT:
            if clean in self._output_files:
                return self._output_files[clean][0]
            raise VfsError(f"no file {clean!r}")
        raise VfsError(f"unknown root {root!r}")

    def read_text(self, path: str, encoding: str = "utf-8") -> str:
        return self.read_bytes(path).decode(encoding)

    def write_bytes(self, path: str, data: bytes, key: Optional[str] = None) -> None:
        """Write a whole file in one call.

        Fast path for the common SDK idiom: validates the path like
        ``open(..., "wb")`` would, then publishes directly without the
        intermediate BytesIO buffer.
        """
        clean = _normalize(path)
        root, set_name, _item = _split(clean)
        if root != _OUT_ROOT:
            raise VfsError(f"cannot write outside {_OUT_ROOT}: {path!r}")
        if set_name not in self._output_names:
            raise VfsError(f"{set_name!r} is not a declared output set")
        self._publish(clean, bytes(data), key)

    def write_text(self, path: str, text: str, key: Optional[str] = None, encoding: str = "utf-8") -> None:
        self.write_bytes(path, text.encode(encoding), key=key)

    def listdir(self, path: str) -> list[str]:
        """List a directory (roots, set folders, or item names)."""
        clean = _normalize(path)
        if clean == "/":
            return ["in", "out"]
        if clean == _IN_ROOT:
            return sorted(self._inputs)
        if clean == _OUT_ROOT:
            return sorted(self._output_names)
        parts = [p for p in clean.split("/") if p]
        if len(parts) == 2:
            root = "/" + parts[0]
            set_name = parts[1]
            if root == _IN_ROOT:
                data_set = self._inputs.get(set_name)
                if data_set is None:
                    raise VfsError(f"no directory {clean!r}")
                return sorted(item.ident for item in data_set)
            if root == _OUT_ROOT:
                by_set = self._outputs_by_set.get(set_name)
                if by_set is None:
                    raise VfsError(f"no directory {clean!r}")
                return sorted(by_set)
        raise VfsError(f"no directory {clean!r}")

    def exists(self, path: str) -> bool:
        try:
            self.read_bytes(path)
            return True
        except VfsError:
            try:
                self.listdir(path)
                return True
            except VfsError:
                return False

    # -- output collection -----------------------------------------------

    def _publish(self, path: str, data: bytes, key: Optional[str]) -> None:
        self._output_files[path] = (data, key)
        _root, set_name, item_name = _split(path)
        by_set = self._outputs_by_set.get(set_name)
        if by_set is not None:
            by_set[item_name] = path

    def collect_outputs(self) -> list[DataSet]:
        """Build the function's output sets from files written to /out.

        Called by the harness after the function returns — the hlibc
        behaviour of automatically turning output-folder files into
        output items.  Declared output sets with no files yield empty
        sets (the declared shape is preserved).
        """
        outputs: list[DataSet] = []
        for set_name in self._output_names:
            data_set = DataSet(set_name)
            by_set = self._outputs_by_set[set_name]
            for item_name in sorted(by_set):
                data, key = self._output_files[by_set[item_name]]
                data_set.add(DataItem(item_name, data, key=key))
            outputs.append(data_set)
        return outputs


class _TextWriter:
    """Text-mode wrapper around a VirtualFile."""

    def __init__(self, raw: VirtualFile):
        self._raw = raw

    def write(self, text: str) -> int:
        return self._raw.write(text.encode("utf-8"))

    def close(self) -> None:
        self._raw.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
