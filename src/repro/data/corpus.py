"""Shared malformed-blob corpus for the two set codecs.

Every entry is a wire blob that a hostile or buggy function could have
left in its output region, together with the *stage* at which the lazy
codec surfaces the problem:

* ``"index"`` — :func:`~repro.data.lazy.parse_sets_lazy` itself raises
  :class:`~repro.data.context.ContextError` (header/footer damage, and
  every v1 blob, which falls back to the eager parse).
* ``"touch"`` — indexing succeeds (the footer is structurally sound)
  and the error surfaces when the poisoned record is first touched:
  reading a set name, iterating items, or materializing a payload.

The strict codec (:func:`~repro.data.context.parse_sets`) must reject
every entry at parse time regardless of stage — that is the parity
contract ``tests/data/test_lazy.py`` and the CI lint job enforce via
:func:`verify_corpus_rejections`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .context import _HEADER2, _SET_ENTRY, serialize_sets
from .items import DataItem, DataSet

__all__ = ["MalformedBlob", "CORPUS", "touch_all", "verify_corpus_rejections"]


@dataclass(frozen=True)
class MalformedBlob:
    """One corpus entry: a bad blob and where the lazy codec rejects it."""

    name: str
    blob: bytes
    lazy_stage: str  # "index" | "touch"


def _base_sets() -> list[DataSet]:
    return [
        DataSet("first", [DataItem("a", b"hello", key="k"), DataItem("b", b"world")]),
        DataSet("second", [DataItem("c", b"!")]),
    ]


def _patched(blob: bytes, offset: int, replacement: bytes) -> bytes:
    return blob[:offset] + replacement + blob[offset + len(replacement) :]


def _build_corpus() -> list[MalformedBlob]:
    blob = serialize_sets(_base_sets())
    blob_v1 = serialize_sets(_base_sets(), version=1)
    _, set_count, footer_offset = _HEADER2.unpack_from(blob, 0)
    footer_end = footer_offset + set_count * _SET_ENTRY.size
    set0_offset, set0_count, _, _ = _SET_ENTRY.unpack_from(blob, footer_offset)
    item_offsets = struct.unpack_from(f"<{set0_count}Q", blob, footer_end)

    corpus = [
        MalformedBlob("empty", b"", "index"),
        MalformedBlob("bad_magic", b"XXXX" + blob[4:], "index"),
        MalformedBlob("v2_truncated_header", blob[:10], "index"),
        MalformedBlob(
            "v2_huge_set_count",
            _patched(blob, 4, struct.pack("<I", 1 << 30)),
            "index",
        ),
        MalformedBlob(
            "v2_footer_past_end",
            _patched(blob, 8, struct.pack("<Q", len(blob) + 64)),
            "index",
        ),
        MalformedBlob(
            "v2_footer_inside_header",
            _patched(blob, 8, struct.pack("<Q", 4)),
            "index",
        ),
        MalformedBlob("v2_truncated_item_offsets", blob[: footer_end + 4], "index"),
        MalformedBlob(
            "v2_set_offset_past_footer",
            _patched(blob, footer_offset, struct.pack("<Q", footer_offset)),
            "index",
        ),
        MalformedBlob(
            "v2_payload_total_exceeds_wire",
            _patched(
                blob,
                footer_offset,
                _SET_ENTRY.pack(set0_offset, set0_count, 1 << 40, 8),
            ),
            "index",
        ),
        # Structurally sound footer, poisoned records: the lazy codec
        # only notices when the record is touched.
        MalformedBlob(
            "v2_item_offset_past_footer",
            _patched(blob, footer_end, struct.pack("<Q", footer_offset + 1)),
            "touch",
        ),
        MalformedBlob(
            "v2_empty_set_name",
            _patched(blob, set0_offset, struct.pack("<I", 0)),
            "touch",
        ),
        MalformedBlob(
            "v2_invalid_utf8_item_name",
            # item 'a' record: name length 1 then the byte itself.
            _patched(blob, item_offsets[0] + 4, b"\xff"),
            "touch",
        ),
        MalformedBlob(
            "v2_invalid_key_flag",
            # key flag of item 'a': after name (4+1) and key (4+1).
            _patched(blob, item_offsets[0] + 10, struct.pack("<I", 7)),
            "touch",
        ),
        MalformedBlob(
            "v2_payload_runs_past_footer",
            # payload length of item 'a': after name, key, flag.
            _patched(blob, item_offsets[0] + 14, struct.pack("<I", 1 << 20)),
            "touch",
        ),
        MalformedBlob(
            "v2_footer_count_disagrees_with_body",
            # body item count of set 0 sits right after its name (4+5).
            _patched(blob, set0_offset + 9, struct.pack("<I", set0_count + 1)),
            "touch",
        ),
        # v1 blobs always take the eager fallback, so every defect is
        # an index-stage rejection for the lazy codec too.
        MalformedBlob("v1_truncated", blob_v1[: len(blob_v1) // 2], "index"),
        MalformedBlob(
            "v1_huge_set_count",
            _patched(blob_v1, 4, struct.pack("<I", 1 << 30)),
            "index",
        ),
    ]
    return corpus


CORPUS: list[MalformedBlob] = _build_corpus()


def touch_all(sets) -> None:
    """Fully consume lazy views: names, keys, lookups, payload bytes."""
    for data_set in sets:
        data_set.ident
        for item in data_set:
            item.ident
            item.key
            item.data


def verify_corpus_rejections() -> list[str]:
    """Check both codecs reject every corpus entry; returns failures.

    Empty list means the parity contract holds: the strict codec raises
    at parse time, the lazy codec raises at its annotated stage, and
    nothing raises anything other than ``ContextError``.
    """
    from .context import ContextError, parse_sets
    from .lazy import parse_sets_lazy

    failures: list[str] = []
    for entry in CORPUS:
        try:
            parse_sets(entry.blob)
            failures.append(f"{entry.name}: strict codec accepted the blob")
        except ContextError:
            pass
        except Exception as exc:  # noqa: BLE001 - the contract is ContextError only
            failures.append(f"{entry.name}: strict codec raised {type(exc).__name__}")
        try:
            sets = parse_sets_lazy(entry.blob)
            if entry.lazy_stage == "index":
                failures.append(f"{entry.name}: lazy codec indexed the blob")
                continue
            touch_all(sets)
            failures.append(f"{entry.name}: lazy codec accepted the blob on touch")
        except ContextError:
            if entry.lazy_stage == "touch":
                # Raising already at index time would also be a parity
                # break: the annotation documents where the cost lands.
                try:
                    parse_sets_lazy(entry.blob)
                except ContextError:
                    failures.append(f"{entry.name}: annotated touch but raised at index")
        except Exception as exc:  # noqa: BLE001
            failures.append(f"{entry.name}: lazy codec raised {type(exc).__name__}")
    return failures
