"""Zero-parse lazy views over wire-format v2 set data.

:func:`parse_sets_lazy` is the fast half of the §8 output-parser split:
instead of eagerly decoding every record the way :func:`~repro.data.context.parse_sets`
does, it reads only the v2 footer offset table — O(sets) work — and
hands back :class:`LazyDataSet` views that decode names and copy
payload bytes out of the underlying buffer on first touch, caching per
entry.  A set that is routed through the dispatcher but never inspected
therefore costs O(1); a fully consumed set costs the same as the eager
parse, paid incrementally.

Validation moves with the work: the footer is bounds-checked up front
(offsets and counts can never make the trusted side read out of
bounds), while per-record strictness — name UTF-8/emptiness, key
flags, payload bounds — is enforced at the same touch that would
decode the record, raising the same :class:`~repro.data.context.ContextError`
the strict codec raises at parse time.  The strict parser remains the
validation/debug codec and additionally cross-checks the footer
against a full body scan.

The views alias the source buffer (usually a context's backing
``bytearray`` via :meth:`~repro.data.context.MemoryContext.load_sets`):
they follow the ``read_view`` lifetime rule and are read-only.  v1
blobs (no footer) fall back to the eager strict parse, so callers
never need to know which version they were handed.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from .context import (
    _HEADER2,
    _MAGIC2,
    _MAX_ITEMS_PER_SET,
    _MAX_NAME_LENGTH,
    _MAX_SETS,
    _SET_ENTRY,
    ContextError,
    parse_sets,
)
from .items import DataSet, group_items_by_key, register_item_type, register_set_type

__all__ = ["parse_sets_lazy", "LazyDataSet", "LazyDataItem"]

_FLAG_LEN = struct.Struct("<II")  # key flag, payload length


def _read_name(blob, position: int, limit: int, allow_empty: bool = True):
    """Decode one length-prefixed name at ``position``; bound by ``limit``.

    Returns ``(text, next_position)``.  Same strictness as the eager
    cursor: length cap, UTF-8 validity, optional non-emptiness.
    """
    if position + 4 > limit:
        raise ContextError("truncated context data")
    (length,) = struct.unpack_from("<I", blob, position)
    if length > _MAX_NAME_LENGTH:
        raise ContextError("name too long")
    position += 4
    if position + length > limit:
        raise ContextError("truncated context data")
    try:
        text = bytes(blob[position : position + length]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ContextError("name is not valid UTF-8") from exc
    if not text and not allow_empty:
        raise ContextError("empty name")
    return text, position + length


class LazyDataItem:
    """A :class:`~repro.data.items.DataItem` view over wire bytes.

    The name and key are decoded when the item is first reached through
    its set; the payload stays in the source buffer until ``.data`` is
    read, then is copied out once and cached.  ``size`` comes from the
    record header, so accounting never materializes the payload.
    """

    __slots__ = ("ident", "key", "_blob", "_data_offset", "_data_length", "_data")

    def __init__(self, ident: str, key: Optional[str], blob, data_offset: int, data_length: int):
        self.ident = ident
        self.key = key
        self._blob = blob
        self._data_offset = data_offset
        self._data_length = data_length
        self._data: Optional[bytes] = None

    @property
    def data(self) -> bytes:
        """Payload bytes, copied out of the buffer on first access."""
        data = self._data
        if data is None:
            start = self._data_offset
            data = bytes(self._blob[start : start + self._data_length])
            self._data = data
            self._blob = None  # drop the buffer alias once materialized
        return data

    @property
    def size(self) -> int:
        """Payload size in bytes (from the header; never materializes)."""
        return self._data_length

    def text(self, encoding: str = "utf-8") -> str:
        """Decode the payload as text (convenience for examples/tests)."""
        return self.data.decode(encoding)

    def __repr__(self) -> str:
        state = "materialized" if self._data is not None else "lazy"
        return f"LazyDataItem({self.ident!r}, {self._data_length} bytes, {state})"


class _SetBody:
    """Shared decode state for one set record (shared across renames).

    Holds the buffer, the set's footer slice of the item-offset array,
    and the touch caches: ``entries[i]`` is the :class:`LazyDataItem`
    for item *i* once reached, ``index`` the name lookup table once
    ``item()`` has been used.  Renamed views share the body, so an item
    materialized through one name is materialized for all of them.
    """

    __slots__ = (
        "blob", "limit", "set_offset", "count",
        "offsets_blob", "flat_start", "offsets", "entries", "index",
    )

    def __init__(self, blob, limit, set_offset, count, offsets_blob, flat_start):
        self.blob = blob
        self.limit = limit  # footer offset: records must end before it
        self.set_offset = set_offset
        self.count = count
        self.offsets_blob = offsets_blob
        self.flat_start = flat_start
        self.offsets = None  # tuple[int, ...], unpacked on first item touch
        self.entries = None  # list[LazyDataItem | None], allocated on first touch
        self.index = None  # dict[str, LazyDataItem], built on first item() lookup

    def set_name(self) -> str:
        """Decode the set name, cross-checking the body item count."""
        name, position = _read_name(self.blob, self.set_offset, self.limit, allow_empty=False)
        if position + 4 > self.limit:
            raise ContextError("truncated context data")
        (body_count,) = struct.unpack_from("<I", self.blob, position)
        if body_count != self.count:
            raise ContextError("footer item count disagrees with body")
        return name

    def item_at(self, index: int) -> LazyDataItem:
        """The item at positional ``index``, parsing its header on first touch."""
        entries = self.entries
        if entries is None:
            entries = self.entries = [None] * self.count
        entry = entries[index]
        if entry is not None:
            return entry
        offsets = self.offsets
        if offsets is None:
            offsets = self.offsets = struct.unpack_from(
                f"<{self.count}Q", self.offsets_blob, self.flat_start
            )
        offset = offsets[index]
        if not _HEADER2.size <= offset < self.limit:
            raise ContextError("item offset out of bounds")
        ident, position = _read_name(self.blob, offset, self.limit, allow_empty=False)
        key_text, position = _read_name(self.blob, position, self.limit)
        if position + 8 > self.limit:
            raise ContextError("truncated context data")
        has_key, data_length = _FLAG_LEN.unpack_from(self.blob, position)
        if has_key not in (0, 1):
            raise ContextError("invalid key flag")
        data_offset = position + 8
        if data_offset + data_length > self.limit:
            raise ContextError("truncated context data")
        entry = LazyDataItem(
            ident, key_text if has_key else None, self.blob, data_offset, data_length
        )
        entries[index] = entry
        return entry


class LazyDataSet:
    """A :class:`~repro.data.items.DataSet` view over wire bytes.

    Implements the full read surface (``__iter__``, ``__len__``,
    ``item()``, ``keys()``, ``grouped_by_key()``, ``size``, ``ident``)
    without decoding anything up front: construction is O(1), ``size``
    and ``len`` come from the footer, and ``renamed`` shares the decode
    caches.  The view is read-only — ``add`` raises.
    """

    __slots__ = ("_body", "_ident", "_payload_total", "_wire")

    def __init__(self, body: _SetBody, payload_total: int, wire_total: int, ident: Optional[str] = None):
        self._body = body
        self._ident = ident  # decoded (or renamed-to) name; None until touched
        self._payload_total = payload_total
        # Body wire bytes from the footer: lets serialized_size() charge
        # a re-store of this set in O(1) without touching any item.
        self._wire = wire_total

    @property
    def ident(self) -> str:
        ident = self._ident
        if ident is None:
            ident = self._ident = self._body.set_name()
        return ident

    def __len__(self) -> int:
        return self._body.count

    def __iter__(self) -> Iterator[LazyDataItem]:
        body = self._body
        for index in range(body.count):
            yield body.item_at(index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        count = self._body.count
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("set item index out of range")
        return self._body.item_at(index)

    @property
    def items(self) -> list[LazyDataItem]:
        return list(self)

    def item(self, ident: str) -> LazyDataItem:
        """Look an item up by name (O(items) once, then O(1))."""
        index = self._index()
        try:
            return index[ident]
        except KeyError:
            raise KeyError(f"no item {ident!r} in set {self.ident!r}") from None

    def _index(self) -> dict:
        index = self._body.index
        if index is None:
            index = {}
            for entry in self:
                if entry.ident in index:
                    raise ContextError(
                        f"duplicate item ident {entry.ident!r} in set {self.ident!r}"
                    )
                index[entry.ident] = entry
            self._body.index = index
        return index

    def __contains__(self, ident: str) -> bool:
        return ident in self._index()

    @property
    def size(self) -> int:
        """Total payload bytes (from the footer; O(1), never decodes)."""
        return self._payload_total

    def keys(self) -> list[Optional[str]]:
        """Distinct item keys in first-appearance order (O(items))."""
        return list(dict.fromkeys(item.key for item in self))

    def grouped_by_key(self) -> "list[DataSet]":
        """Split into per-key sets (for ``key``-distributed edges).

        The buckets are eager :class:`DataSet` containers holding this
        view's lazy items, so grouping never copies payload bytes.
        """
        return [
            DataSet(self.ident, bucket)
            for bucket in group_items_by_key(self).values()
        ]

    def renamed(self, ident: str) -> "LazyDataSet":
        """A view of the same record under a new name (O(1), shares caches)."""
        if ident == self.ident:
            return self
        if not ident:
            raise ValueError("set ident must be non-empty")
        return LazyDataSet(self._body, self._payload_total, self._wire, ident=ident)

    def add(self, item) -> None:
        raise TypeError("lazy set views are read-only; copy into a DataSet to modify")

    def __repr__(self) -> str:
        try:
            ident = self.ident
        except ContextError:
            ident = "<malformed>"
        return f"LazyDataSet({ident!r}, {self._body.count} items, {self._payload_total} bytes)"


def parse_sets_lazy(blob) -> "list":
    """Index a wire blob into lazy set views without decoding records.

    For a v2 blob this reads the header and footer only — O(sets) work,
    independent of item count or payload bytes; per-item offsets stay
    packed until a set is first touched.  A v1 blob (no footer) falls
    back to the strict eager parse, so the return type is a list of
    set-shaped objects either way.  Malformed headers and footers raise
    :class:`~repro.data.context.ContextError` here; malformed records
    raise on touch.
    """
    if len(blob) < 4 or bytes(blob[:4]) != _MAGIC2:
        return parse_sets(blob)  # v1 fallback (or bad magic / truncated)
    if len(blob) < _HEADER2.size:
        raise ContextError("truncated context data")
    _, set_count, footer_offset = _HEADER2.unpack_from(blob, 0)
    if set_count > _MAX_SETS:
        raise ContextError("set count exceeds limit")
    footer_end = footer_offset + set_count * _SET_ENTRY.size
    if footer_offset < _HEADER2.size or footer_end > len(blob):
        raise ContextError("footer offset out of bounds")
    sets: list[LazyDataSet] = []
    # The flat item-offset array lives right after the set entries; each
    # body records its byte position into it and unpacks on first touch.
    flat_position = footer_end
    position = footer_offset
    for _ in range(set_count):
        set_offset, item_count, payload_total, wire_total = _SET_ENTRY.unpack_from(
            blob, position
        )
        position += _SET_ENTRY.size
        if item_count > _MAX_ITEMS_PER_SET:
            raise ContextError("item count exceeds limit")
        if not _HEADER2.size <= set_offset < footer_offset:
            raise ContextError("set offset out of bounds")
        if payload_total > wire_total or wire_total > footer_offset:
            raise ContextError("inconsistent footer byte totals")
        body = _SetBody(blob, footer_offset, set_offset, item_count, blob, flat_position)
        sets.append(LazyDataSet(body, payload_total, wire_total))
        flat_position += item_count * 8
    if flat_position > len(blob):
        raise ContextError("truncated footer item offsets")
    return sets


register_item_type(LazyDataItem)
register_set_type(LazyDataSet)
