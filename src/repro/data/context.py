"""Memory contexts — the dispatcher's memory-management abstraction (§5).

A memory context is "a bounded, contiguous memory region with methods
to read or write at particular offsets and methods to transfer data to
other contexts".  The dispatcher prepares one per ready function,
copies upstream outputs into it, and tears it down once all consumers
have drained its outputs.

The reproduction backs each context with a real ``bytearray`` and
tracks *committed* pages separately from *reserved* capacity, mirroring
the paper's demand-paging behaviour ("Dandelion reserves this amount of
virtual memory for the context and uses demand paging to allocate
zeroed pages as needed").  Committed bytes are what the Azure-trace
memory experiments (Figs 1 and 10) account for.

The data plane is *accounting-first*: :meth:`MemoryContext.store_sets`
computes the exact serialized size via :func:`serialized_size` and
records the store as pending, without building the blob.  Committed
pages are derived from the logical extent, so the common dispatcher
path (store inputs, store outputs, observe, free) costs O(names), not
O(payload bytes).  Bytes are materialized lazily — cached in the
backing buffer, in original store order — only when something actually
reads the region (``read``/``load_sets``/``transfer_to``).  See
docs/dataplane.md for the full cost model.

Sets are serialised into the region with a small length-prefixed binary
layout; :func:`parse_sets` is the strict ~100-line "function output
parser" the security analysis in §8 talks about.

The wire format is versioned (see docs/dataplane.md):

* **v1** (magic ``DNDL``) is the original scan-only layout: the reader
  must walk every record to find anything.
* **v2** (magic ``DND2``, the default) appends a *footer offset table*
  — per-set record offsets, item counts, payload/wire byte totals, and
  a flat per-item record-offset array — so a reader can seek to any set
  or item in O(1) instead of scanning.  :func:`repro.data.lazy.parse_sets_lazy`
  (what :meth:`MemoryContext.load_sets` returns) builds zero-parse
  views over it; :func:`parse_sets` stays the strict eager
  validation/debug codec and cross-checks the footer against a full
  body scan.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional

from .items import DataItem, DataSet

__all__ = [
    "MemoryContext",
    "ContextError",
    "serialize_sets",
    "serialized_size",
    "parse_sets",
    "PAGE_SIZE",
    "WIRE_VERSION",
]

PAGE_SIZE = 4096

WIRE_VERSION = 2

_MAGIC = b"DNDL"                   # v1: scan-only
_MAGIC2 = b"DND2"                  # v2: v1 body + footer offset table
_HEADER = struct.Struct("<4sI")    # magic, set count
_HEADER2 = struct.Struct("<4sIQ")  # magic, set count, footer offset
_LENGTH = struct.Struct("<I")
# Footer set entry: set record offset, item count, total payload bytes,
# total item-record (wire) bytes.
_SET_ENTRY = struct.Struct("<QIQQ")
_ITEM_ENTRY = struct.Struct("<Q")  # item record offset

# Hard caps enforced by the parser so malicious output data cannot make
# the trusted side allocate unbounded memory.
_MAX_SETS = 4096
_MAX_ITEMS_PER_SET = 1 << 20
_MAX_NAME_LENGTH = 4096


class ContextError(Exception):
    """Raised for out-of-bounds access or malformed context contents."""


class MemoryContext:
    """A bounded, contiguous memory region owned by one function run."""

    __slots__ = ("ident", "_capacity", "_buffer", "_extent", "_pending", "_freed")

    def __init__(self, capacity: int, ident: str = ""):
        if capacity <= 0:
            raise ContextError("context capacity must be positive")
        self.ident = ident
        self._capacity = int(capacity)
        self._buffer = bytearray()  # grows on demand, never beyond capacity
        self._extent = 0  # logical high-water mark (committed accounting)
        # Pending lazy stores: (offset, sets) tuples in store order.
        self._pending: list[tuple[int, list[DataSet]]] = []
        self._freed = False

    # -- accounting -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Reserved (virtual) size in bytes."""
        return self._capacity

    @property
    def committed(self) -> int:
        """Bytes of physical memory committed (page granularity)."""
        extent = self._extent
        if not extent:
            return 0
        return ((extent + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE

    @property
    def freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Release the backing memory; further access is an error."""
        self._buffer = bytearray()
        self._pending = []
        self._extent = 0
        self._freed = True

    def _check_alive(self) -> None:
        if self._freed:
            raise ContextError(f"context {self.ident!r} already freed")

    def _ensure(self, end: int) -> None:
        if end > self._capacity:
            raise ContextError(
                f"access at {end} exceeds context capacity {self._capacity}"
            )
        if end > len(self._buffer):
            # Demand-"page in" zeroed memory.
            self._buffer.extend(b"\x00" * (end - len(self._buffer)))

    def _materialize(self) -> None:
        """Serialise pending lazy stores into the backing buffer.

        Stores are applied in their original order, so a raw write that
        happened after a lazy store keeps its bytes (raw writes drain
        pending stores before touching the buffer).
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        for offset, sets in pending:
            blob = serialize_sets(sets)
            self._ensure(offset + len(blob))
            self._buffer[offset : offset + len(blob)] = blob

    # -- raw access -------------------------------------------------------

    def write(self, offset: int, data) -> None:
        """Copy ``data`` (any bytes-like) into the region at ``offset``."""
        self._check_alive()
        if offset < 0:
            raise ContextError("negative offset")
        self._materialize()
        end = offset + len(data)
        self._ensure(end)
        self._buffer[offset:end] = data
        if end > self._extent:
            self._extent = end

    def read(self, offset: int, length: int) -> bytes:
        """Copy ``length`` bytes out of the region at ``offset``."""
        return bytes(self.read_view(offset, length))

    def read_view(self, offset: int, length: int) -> memoryview:
        """Zero-copy view of ``length`` bytes at ``offset``.

        The view aliases the backing buffer: it is valid until the next
        write or :meth:`free`.  ``transfer_to`` uses it so a context-to-
        context move costs one copy (into the destination) instead of
        two.
        """
        self._check_alive()
        if offset < 0 or length < 0:
            raise ContextError("negative offset or length")
        if offset + length > self._capacity:
            raise ContextError("read past end of context")
        self._materialize()
        self._ensure(offset + length)
        return memoryview(self._buffer)[offset : offset + length]

    def transfer_to(self, other: "MemoryContext", src_offset: int, dst_offset: int, length: int) -> None:
        """Copy a range of this context into another context.

        This is the specialised context-to-context transfer method the
        dispatcher uses to move function outputs to consumer inputs.
        The source bytes are handed over as a memoryview, so the only
        copy is the one into the destination's buffer.
        """
        other.write(dst_offset, self.read_view(src_offset, length))

    # -- structured access ---------------------------------------------

    def store_sets(self, sets: Iterable[DataSet], offset: int = 0) -> int:
        """Record ``sets`` as stored at ``offset``; returns encoded size.

        Accounting-first: the committed extent grows by the exact
        serialized size (computed without building the blob) and the
        capacity check happens now, but the bytes themselves are only
        materialized if the region is later read.
        """
        self._check_alive()
        if offset < 0:
            raise ContextError("negative offset")
        if type(sets) is not list:
            sets = list(sets)
        size = serialized_size(sets)
        end = offset + size
        if end > self._capacity:
            raise ContextError(
                f"access at {end} exceeds context capacity {self._capacity}"
            )
        self._pending.append((offset, sets))
        if end > self._extent:
            self._extent = end
        return size

    def load_sets(self, offset: int = 0) -> list[DataSet]:
        """Zero-parse views of sets previously stored at ``offset``.

        Returns lazy set views over the context buffer: the call itself
        only reads the v2 footer (O(sets)); names decode and payload
        bytes are copied out on first touch.  The views alias the
        backing buffer and follow the same lifetime rule as
        :meth:`read_view` (valid until the next write or free).  A v1
        blob falls back to the eager strict parse.
        """
        from .lazy import parse_sets_lazy  # deferred: lazy imports this module

        self._check_alive()
        self._materialize()
        self._ensure(self._extent)
        return parse_sets_lazy(memoryview(self._buffer)[offset:])

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"{self.committed}B committed"
        return f"MemoryContext({self.ident!r}, cap={self._capacity}, {state})"


def serialize_sets(sets: Iterable[DataSet], version: int = WIRE_VERSION) -> bytes:
    """Encode sets into the length-prefixed on-context layout.

    ``version=2`` (the default) appends the footer offset table that
    makes the blob seekable; ``version=1`` emits the legacy scan-only
    layout (kept for the fallback-parse path and format tests).
    """
    sets = list(sets)
    if version == 1:
        parts = [_HEADER.pack(_MAGIC, len(sets))]
        for data_set in sets:
            parts.append(_encode_name(data_set.ident))
            parts.append(_LENGTH.pack(len(data_set)))
            for item in data_set:
                parts.append(_encode_name(item.ident))
                key = item.key if item.key is not None else ""
                parts.append(_encode_name(key))
                parts.append(_LENGTH.pack(1 if item.key is not None else 0))
                parts.append(_LENGTH.pack(len(item.data)))
                parts.append(item.data)
        return b"".join(parts)
    if version != 2:
        raise ValueError(f"unknown wire format version {version!r}")
    parts: list = [b""]  # header placeholder, patched once offsets are known
    offset = _HEADER2.size
    set_entries: list[tuple[int, int, int, int]] = []
    item_offsets: list[int] = []
    for data_set in sets:
        if getattr(data_set, "_body", None) is not None:
            spliced = _splice_lazy_set(data_set, offset)
            if spliced is not None:
                record, entry, shifted_offsets = spliced
                parts.append(record)
                offset += len(record)
                set_entries.append(entry)
                item_offsets.extend(shifted_offsets)
                continue
        set_offset = offset
        name = _encode_name(data_set.ident)
        count = len(data_set)
        parts.append(name)
        parts.append(_LENGTH.pack(count))
        offset += len(name) + 4
        payload_total = 0
        wire_total = 0
        for item in data_set:
            item_offsets.append(offset)
            item_name = _encode_name(item.ident)
            key = item.key
            key_name = _encode_name(key if key is not None else "")
            data = item.data
            parts.append(item_name)
            parts.append(key_name)
            parts.append(_LENGTH.pack(1 if key is not None else 0))
            parts.append(_LENGTH.pack(len(data)))
            parts.append(data)
            record = len(item_name) + len(key_name) + 8 + len(data)
            offset += record
            payload_total += len(data)
            wire_total += record
        set_entries.append((set_offset, count, payload_total, wire_total))
    parts[0] = _HEADER2.pack(_MAGIC2, len(sets), offset)
    for entry in set_entries:
        parts.append(_SET_ENTRY.pack(*entry))
    parts.append(struct.pack(f"<{len(item_offsets)}Q", *item_offsets))
    return b"".join(parts)


def _splice_lazy_set(data_set, offset: int):
    """Zero-copy re-encode of an unmodified lazy set view.

    A :class:`~repro.data.lazy.LazyDataSet` stored back as-is already
    *is* valid v2 body bytes — its name record, item count, and item
    records sit contiguously in the source blob.  Splice that byte
    range into the output (one slice, no per-item decode or payload
    materialization) and shift the source footer's item offsets by the
    relocation delta.  Returns ``(record, set_entry, item_offsets)``,
    or ``None`` when the view must take the slow path (renamed views:
    the name on the wire is not the name being stored).
    """
    body = data_set._body
    blob = body.blob
    start = body.set_offset
    ident = data_set._ident
    if ident is not None and ident != body.set_name():
        return None
    (name_length,) = _LENGTH.unpack_from(blob, start)
    end = start + 8 + name_length + data_set._wire  # name rec + count + items
    if end > body.limit:  # malformed footer: let the slow path diagnose
        return None
    offsets = body.offsets
    if offsets is None:
        offsets = body.offsets = struct.unpack_from(
            f"<{body.count}Q", body.offsets_blob, body.flat_start
        )
    delta = offset - start
    entry = (offset, body.count, data_set._payload_total, data_set._wire)
    return blob[start:end], entry, [o + delta for o in offsets]


def serialized_size(sets: Iterable[DataSet], version: int = WIRE_VERSION) -> int:
    """Exact ``len(serialize_sets(sets, version))`` without the blob.

    This is the accounting half of the data plane: the dispatcher uses
    it to charge committed pages for a store without paying the copy.
    A hypothesis property test pins it byte-for-byte to the eager
    encoder, including the name-length validation.  For v2 the footer
    adds ``_SET_ENTRY.size`` per set plus 8 bytes per item on top of
    the body; lazy views carry their body wire size from the footer, so
    re-storing a lazy set stays O(1) per set.
    """
    if version == 1:
        size = _HEADER.size
        footer_per_set = footer_per_item = 0
    elif version == 2:
        size = _HEADER2.size
        footer_per_set = _SET_ENTRY.size
        footer_per_item = _ITEM_ENTRY.size
    else:
        raise ValueError(f"unknown wire format version {version!r}")
    for data_set in sets:
        size += 8 + _name_length(data_set.ident)  # name + item count
        size += footer_per_set + footer_per_item * len(data_set)
        wire = getattr(data_set, "_wire", None)
        if wire is None:
            # Per-item wire bytes: name, key, key flag, length, payload.
            # Items are immutable and often shared across renamed sets,
            # so the sum is cached on the set and reused at every
            # downstream store (the chain hot path).
            wire = 0
            for item in data_set:
                wire += 4 + _name_length(item.ident)
                wire += 4 + _name_length(item.key if item.key is not None else "")
                wire += 8 + item.size  # key flag + payload length + payload
            try:
                data_set._wire = wire
            except AttributeError:
                pass  # plain iterables without the cache slot
        size += wire
    return size


def _name_length(name: str) -> int:
    """UTF-8 byte length of ``name``, with the encoder's length check."""
    length = len(name) if name.isascii() else len(name.encode("utf-8"))
    if length > _MAX_NAME_LENGTH:
        raise ContextError(f"name longer than {_MAX_NAME_LENGTH} bytes")
    return length


def _encode_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > _MAX_NAME_LENGTH:
        raise ContextError(f"name longer than {_MAX_NAME_LENGTH} bytes")
    return _LENGTH.pack(len(raw)) + raw


class _Cursor:
    """Bounds-checked reader over untrusted bytes (or a memoryview)."""

    __slots__ = ("blob", "position")

    def __init__(self, blob):
        self.blob = blob
        self.position = 0

    def take(self, length: int):
        if length < 0 or self.position + length > len(self.blob):
            raise ContextError("truncated context data")
        chunk = self.blob[self.position : self.position + length]
        self.position += length
        return chunk

    def u32(self) -> int:
        return _LENGTH.unpack(self.take(4))[0]

    def name(self, allow_empty: bool = True) -> str:
        length = self.u32()
        if length > _MAX_NAME_LENGTH:
            raise ContextError("name too long")
        raw = self.take(length)
        try:
            text = bytes(raw).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ContextError("name is not valid UTF-8") from exc
        if not text and not allow_empty:
            raise ContextError("empty name")
        return text


def parse_sets(blob) -> list[DataSet]:
    """Strictly parse untrusted set data left behind by a function.

    Accepts ``bytes`` or a ``memoryview`` (the zero-copy path from
    :meth:`MemoryContext.load_sets`); only item payloads are copied out.
    Every length is validated before use; malformed or truncated data
    raises :class:`ContextError` rather than producing partial results.
    This is the reproduction's analogue of the 100-line Rust output
    parser whose small size §8 argues makes verification feasible.

    Both wire versions are accepted.  For a v2 blob the footer offset
    table is cross-validated against the full body scan (offsets,
    counts, payload/wire totals must all agree), which is exactly why
    this stays the validation/debug codec while
    :func:`repro.data.lazy.parse_sets_lazy` trusts the footer for the
    fast path.
    """
    if len(blob) >= 4 and bytes(blob[:4]) == _MAGIC2:
        return _parse_sets_v2(blob)
    cursor = _Cursor(blob)
    magic, set_count = _HEADER.unpack(cursor.take(_HEADER.size))
    if magic != _MAGIC:
        raise ContextError("bad magic: context does not contain set data")
    if set_count > _MAX_SETS:
        raise ContextError("set count exceeds limit")
    sets: list[DataSet] = []
    for _ in range(set_count):
        sets.append(_parse_one_set(cursor))
    return sets


def _parse_one_set(cursor: _Cursor) -> DataSet:
    """Strict body scan of one set record at the cursor (shared v1/v2)."""
    set_ident = cursor.name(allow_empty=False)
    item_count = cursor.u32()
    if item_count > _MAX_ITEMS_PER_SET:
        raise ContextError("item count exceeds limit")
    data_set = DataSet(set_ident)
    for _ in range(item_count):
        item_ident = cursor.name(allow_empty=False)
        key_text = cursor.name()
        has_key = cursor.u32()
        if has_key not in (0, 1):
            raise ContextError("invalid key flag")
        payload_length = cursor.u32()
        payload = bytes(cursor.take(payload_length))
        key: Optional[str] = key_text if has_key else None
        data_set.add(DataItem(item_ident, payload, key=key))
    return data_set


def _parse_footer(blob) -> "tuple[int, list[tuple[int, int, int, int]], list[list[int]]]":
    """Decode and bounds-check a v2 footer.

    Returns ``(set_count, set_entries, per_set_item_offsets)``.  Only
    structural validity is checked here (the lazy reader's trust
    boundary); :func:`parse_sets` additionally cross-checks every entry
    against a body scan.
    """
    if len(blob) < _HEADER2.size:
        raise ContextError("truncated context data")
    magic, set_count, footer_offset = _HEADER2.unpack(bytes(blob[: _HEADER2.size]))
    if magic != _MAGIC2:
        raise ContextError("bad magic: context does not contain v2 set data")
    if set_count > _MAX_SETS:
        raise ContextError("set count exceeds limit")
    footer_end = footer_offset + set_count * _SET_ENTRY.size
    if footer_offset < _HEADER2.size or footer_end > len(blob):
        raise ContextError("footer offset out of bounds")
    set_entries: list[tuple[int, int, int, int]] = []
    total_items = 0
    position = footer_offset
    for _ in range(set_count):
        entry = _SET_ENTRY.unpack(bytes(blob[position : position + _SET_ENTRY.size]))
        set_offset, item_count, payload_total, wire_total = entry
        if item_count > _MAX_ITEMS_PER_SET:
            raise ContextError("item count exceeds limit")
        if not _HEADER2.size <= set_offset < footer_offset:
            raise ContextError("set offset out of bounds")
        if payload_total > wire_total or wire_total > footer_offset:
            raise ContextError("inconsistent footer byte totals")
        set_entries.append(entry)
        total_items += item_count
        position += _SET_ENTRY.size
    offsets_end = footer_end + total_items * _ITEM_ENTRY.size
    if offsets_end > len(blob):
        raise ContextError("truncated footer item offsets")
    flat = struct.unpack(f"<{total_items}Q", bytes(blob[footer_end:offsets_end]))
    per_set: list[list[int]] = []
    cursor = 0
    for _, item_count, _, _ in set_entries:
        offsets = list(flat[cursor : cursor + item_count])
        for item_offset in offsets:
            if not _HEADER2.size <= item_offset < footer_offset:
                raise ContextError("item offset out of bounds")
        per_set.append(offsets)
        cursor += item_count
    return set_count, set_entries, per_set


def _parse_sets_v2(blob) -> list[DataSet]:
    """Strict v2 parse: full body scan cross-validated against the footer."""
    set_count, set_entries, per_set_offsets = _parse_footer(blob)
    footer_offset = _HEADER2.unpack(bytes(blob[: _HEADER2.size]))[2]
    cursor = _Cursor(blob)
    cursor.position = _HEADER2.size
    sets: list[DataSet] = []
    for index in range(set_count):
        set_offset, item_count, payload_total, wire_total = set_entries[index]
        if cursor.position != set_offset:
            raise ContextError("footer set offset disagrees with body scan")
        set_ident = cursor.name(allow_empty=False)
        scanned_count = cursor.u32()
        if scanned_count != item_count:
            raise ContextError("footer item count disagrees with body scan")
        if item_count > _MAX_ITEMS_PER_SET:
            raise ContextError("item count exceeds limit")
        data_set = DataSet(set_ident)
        body_start = cursor.position
        scanned_payload = 0
        for item_index in range(item_count):
            if cursor.position != per_set_offsets[index][item_index]:
                raise ContextError("footer item offset disagrees with body scan")
            item_ident = cursor.name(allow_empty=False)
            key_text = cursor.name()
            has_key = cursor.u32()
            if has_key not in (0, 1):
                raise ContextError("invalid key flag")
            payload_length = cursor.u32()
            payload = bytes(cursor.take(payload_length))
            scanned_payload += payload_length
            data_set.add(DataItem(item_ident, payload, key=key_text if has_key else None))
        if scanned_payload != payload_total:
            raise ContextError("footer payload total disagrees with body scan")
        if cursor.position - body_start != wire_total:
            raise ContextError("footer wire total disagrees with body scan")
        sets.append(data_set)
    if cursor.position != footer_offset:
        raise ContextError("body does not end at footer offset")
    return sets
