"""Memory contexts — the dispatcher's memory-management abstraction (§5).

A memory context is "a bounded, contiguous memory region with methods
to read or write at particular offsets and methods to transfer data to
other contexts".  The dispatcher prepares one per ready function,
copies upstream outputs into it, and tears it down once all consumers
have drained its outputs.

The reproduction backs each context with a real ``bytearray`` and
tracks *committed* pages separately from *reserved* capacity, mirroring
the paper's demand-paging behaviour ("Dandelion reserves this amount of
virtual memory for the context and uses demand paging to allocate
zeroed pages as needed").  Committed bytes are what the Azure-trace
memory experiments (Figs 1 and 10) account for.

The data plane is *accounting-first*: :meth:`MemoryContext.store_sets`
computes the exact serialized size via :func:`serialized_size` and
records the store as pending, without building the blob.  Committed
pages are derived from the logical extent, so the common dispatcher
path (store inputs, store outputs, observe, free) costs O(names), not
O(payload bytes).  Bytes are materialized lazily — cached in the
backing buffer, in original store order — only when something actually
reads the region (``read``/``load_sets``/``transfer_to``).  See
docs/dataplane.md for the full cost model.

Sets are serialised into the region with a small length-prefixed binary
layout; :func:`parse_sets` is the strict ~100-line "function output
parser" the security analysis in §8 talks about.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional

from .items import DataItem, DataSet

__all__ = [
    "MemoryContext",
    "ContextError",
    "serialize_sets",
    "serialized_size",
    "parse_sets",
    "PAGE_SIZE",
]

PAGE_SIZE = 4096

_MAGIC = b"DNDL"
_HEADER = struct.Struct("<4sI")  # magic, set count
_LENGTH = struct.Struct("<I")

# Hard caps enforced by the parser so malicious output data cannot make
# the trusted side allocate unbounded memory.
_MAX_SETS = 4096
_MAX_ITEMS_PER_SET = 1 << 20
_MAX_NAME_LENGTH = 4096


class ContextError(Exception):
    """Raised for out-of-bounds access or malformed context contents."""


class MemoryContext:
    """A bounded, contiguous memory region owned by one function run."""

    __slots__ = ("ident", "_capacity", "_buffer", "_extent", "_pending", "_freed")

    def __init__(self, capacity: int, ident: str = ""):
        if capacity <= 0:
            raise ContextError("context capacity must be positive")
        self.ident = ident
        self._capacity = int(capacity)
        self._buffer = bytearray()  # grows on demand, never beyond capacity
        self._extent = 0  # logical high-water mark (committed accounting)
        # Pending lazy stores: (offset, sets) tuples in store order.
        self._pending: list[tuple[int, list[DataSet]]] = []
        self._freed = False

    # -- accounting -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Reserved (virtual) size in bytes."""
        return self._capacity

    @property
    def committed(self) -> int:
        """Bytes of physical memory committed (page granularity)."""
        extent = self._extent
        if not extent:
            return 0
        return ((extent + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE

    @property
    def freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Release the backing memory; further access is an error."""
        self._buffer = bytearray()
        self._pending = []
        self._extent = 0
        self._freed = True

    def _check_alive(self) -> None:
        if self._freed:
            raise ContextError(f"context {self.ident!r} already freed")

    def _ensure(self, end: int) -> None:
        if end > self._capacity:
            raise ContextError(
                f"access at {end} exceeds context capacity {self._capacity}"
            )
        if end > len(self._buffer):
            # Demand-"page in" zeroed memory.
            self._buffer.extend(b"\x00" * (end - len(self._buffer)))

    def _materialize(self) -> None:
        """Serialise pending lazy stores into the backing buffer.

        Stores are applied in their original order, so a raw write that
        happened after a lazy store keeps its bytes (raw writes drain
        pending stores before touching the buffer).
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        for offset, sets in pending:
            blob = serialize_sets(sets)
            self._ensure(offset + len(blob))
            self._buffer[offset : offset + len(blob)] = blob

    # -- raw access -------------------------------------------------------

    def write(self, offset: int, data) -> None:
        """Copy ``data`` (any bytes-like) into the region at ``offset``."""
        self._check_alive()
        if offset < 0:
            raise ContextError("negative offset")
        self._materialize()
        end = offset + len(data)
        self._ensure(end)
        self._buffer[offset:end] = data
        if end > self._extent:
            self._extent = end

    def read(self, offset: int, length: int) -> bytes:
        """Copy ``length`` bytes out of the region at ``offset``."""
        return bytes(self.read_view(offset, length))

    def read_view(self, offset: int, length: int) -> memoryview:
        """Zero-copy view of ``length`` bytes at ``offset``.

        The view aliases the backing buffer: it is valid until the next
        write or :meth:`free`.  ``transfer_to`` uses it so a context-to-
        context move costs one copy (into the destination) instead of
        two.
        """
        self._check_alive()
        if offset < 0 or length < 0:
            raise ContextError("negative offset or length")
        if offset + length > self._capacity:
            raise ContextError("read past end of context")
        self._materialize()
        self._ensure(offset + length)
        return memoryview(self._buffer)[offset : offset + length]

    def transfer_to(self, other: "MemoryContext", src_offset: int, dst_offset: int, length: int) -> None:
        """Copy a range of this context into another context.

        This is the specialised context-to-context transfer method the
        dispatcher uses to move function outputs to consumer inputs.
        The source bytes are handed over as a memoryview, so the only
        copy is the one into the destination's buffer.
        """
        other.write(dst_offset, self.read_view(src_offset, length))

    # -- structured access ---------------------------------------------

    def store_sets(self, sets: Iterable[DataSet], offset: int = 0) -> int:
        """Record ``sets`` as stored at ``offset``; returns encoded size.

        Accounting-first: the committed extent grows by the exact
        serialized size (computed without building the blob) and the
        capacity check happens now, but the bytes themselves are only
        materialized if the region is later read.
        """
        self._check_alive()
        if offset < 0:
            raise ContextError("negative offset")
        if type(sets) is not list:
            sets = list(sets)
        size = serialized_size(sets)
        end = offset + size
        if end > self._capacity:
            raise ContextError(
                f"access at {end} exceeds context capacity {self._capacity}"
            )
        self._pending.append((offset, sets))
        if end > self._extent:
            self._extent = end
        return size

    def load_sets(self, offset: int = 0) -> list[DataSet]:
        """Parse sets previously stored at ``offset``."""
        self._check_alive()
        self._materialize()
        self._ensure(self._extent)
        return parse_sets(memoryview(self._buffer)[offset:])

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"{self.committed}B committed"
        return f"MemoryContext({self.ident!r}, cap={self._capacity}, {state})"


def serialize_sets(sets: Iterable[DataSet]) -> bytes:
    """Encode sets into the length-prefixed on-context layout."""
    sets = list(sets)
    parts = [_HEADER.pack(_MAGIC, len(sets))]
    for data_set in sets:
        parts.append(_encode_name(data_set.ident))
        parts.append(_LENGTH.pack(len(data_set)))
        for item in data_set:
            parts.append(_encode_name(item.ident))
            key = item.key if item.key is not None else ""
            parts.append(_encode_name(key))
            parts.append(_LENGTH.pack(1 if item.key is not None else 0))
            parts.append(_LENGTH.pack(len(item.data)))
            parts.append(item.data)
    return b"".join(parts)


def serialized_size(sets: Iterable[DataSet]) -> int:
    """Exact ``len(serialize_sets(sets))`` without building the blob.

    This is the accounting half of the data plane: the dispatcher uses
    it to charge committed pages for a store without paying the copy.
    A hypothesis property test pins it byte-for-byte to the eager
    encoder, including the name-length validation.
    """
    size = _HEADER.size
    for data_set in sets:
        size += 8 + _name_length(data_set.ident)  # name + item count
        wire = getattr(data_set, "_wire", None)
        if wire is None:
            # Per-item wire bytes: name, key, key flag, length, payload.
            # Items are immutable and often shared across renamed sets,
            # so the sum is cached on the set and reused at every
            # downstream store (the chain hot path).
            wire = 0
            for item in data_set:
                wire += 4 + _name_length(item.ident)
                wire += 4 + _name_length(item.key if item.key is not None else "")
                wire += 8 + len(item.data)  # key flag + payload length + payload
            try:
                data_set._wire = wire
            except AttributeError:
                pass  # plain iterables without the cache slot
        size += wire
    return size


def _name_length(name: str) -> int:
    """UTF-8 byte length of ``name``, with the encoder's length check."""
    length = len(name) if name.isascii() else len(name.encode("utf-8"))
    if length > _MAX_NAME_LENGTH:
        raise ContextError(f"name longer than {_MAX_NAME_LENGTH} bytes")
    return length


def _encode_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > _MAX_NAME_LENGTH:
        raise ContextError(f"name longer than {_MAX_NAME_LENGTH} bytes")
    return _LENGTH.pack(len(raw)) + raw


class _Cursor:
    """Bounds-checked reader over untrusted bytes (or a memoryview)."""

    __slots__ = ("blob", "position")

    def __init__(self, blob):
        self.blob = blob
        self.position = 0

    def take(self, length: int):
        if length < 0 or self.position + length > len(self.blob):
            raise ContextError("truncated context data")
        chunk = self.blob[self.position : self.position + length]
        self.position += length
        return chunk

    def u32(self) -> int:
        return _LENGTH.unpack(self.take(4))[0]

    def name(self, allow_empty: bool = True) -> str:
        length = self.u32()
        if length > _MAX_NAME_LENGTH:
            raise ContextError("name too long")
        raw = self.take(length)
        try:
            text = bytes(raw).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ContextError("name is not valid UTF-8") from exc
        if not text and not allow_empty:
            raise ContextError("empty name")
        return text


def parse_sets(blob) -> list[DataSet]:
    """Strictly parse untrusted set data left behind by a function.

    Accepts ``bytes`` or a ``memoryview`` (the zero-copy path from
    :meth:`MemoryContext.load_sets`); only item payloads are copied out.
    Every length is validated before use; malformed or truncated data
    raises :class:`ContextError` rather than producing partial results.
    This is the reproduction's analogue of the 100-line Rust output
    parser whose small size §8 argues makes verification feasible.
    """
    cursor = _Cursor(blob)
    magic, set_count = _HEADER.unpack(cursor.take(_HEADER.size))
    if magic != _MAGIC:
        raise ContextError("bad magic: context does not contain set data")
    if set_count > _MAX_SETS:
        raise ContextError("set count exceeds limit")
    sets: list[DataSet] = []
    for _ in range(set_count):
        set_ident = cursor.name(allow_empty=False)
        item_count = cursor.u32()
        if item_count > _MAX_ITEMS_PER_SET:
            raise ContextError("item count exceeds limit")
        data_set = DataSet(set_ident)
        for _ in range(item_count):
            item_ident = cursor.name(allow_empty=False)
            key_text = cursor.name()
            has_key = cursor.u32()
            if has_key not in (0, 1):
                raise ContextError("invalid key flag")
            payload_length = cursor.u32()
            payload = bytes(cursor.take(payload_length))
            key: Optional[str] = key_text if has_key else None
            data_set.add(DataItem(item_ident, payload, key=key))
        sets.append(data_set)
    return sets
