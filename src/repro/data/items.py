"""Data items and data sets — the values that flow along composition edges.

Dandelion functions consume a declared list of *input sets* and produce
a declared list of *output sets* (§4.1).  A set is an ordered, named
collection of *items*; an item is a named blob of bytes plus an
optional grouping *key* ("Keys are set by the user when formatting
output data and are only used for grouping").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = [
    "DataItem",
    "DataSet",
    "total_size",
    "group_items_by_key",
    "is_data_set",
    "register_item_type",
    "register_set_type",
]


@dataclass(frozen=True)
class DataItem:
    """One named blob flowing through a composition.

    ``ident`` is the item name (the file name in the virtual
    filesystem view), ``data`` the payload, and ``key`` the optional
    grouping key used by ``key``-distributed edges.
    """

    ident: str
    data: bytes
    key: Optional[str] = None

    def __post_init__(self):
        if not isinstance(self.data, (bytes, bytearray, memoryview)):
            raise TypeError(f"item data must be bytes-like, got {type(self.data).__name__}")
        object.__setattr__(self, "data", bytes(self.data))
        if not self.ident:
            raise ValueError("item ident must be non-empty")

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)

    def text(self, encoding: str = "utf-8") -> str:
        """Decode the payload as text (convenience for examples/tests)."""
        return self.data.decode(encoding)


# Concrete types accepted wherever a DataItem / DataSet flows.  The lazy
# wire-format views (repro.data.lazy) register themselves here so the
# eager containers and every consumer accept them interchangeably
# without the data layer importing its own submodule back.
_ITEM_TYPES: tuple = (DataItem,)
_SET_TYPES: tuple = ()  # DataSet is appended once the class exists


def register_item_type(cls) -> None:
    """Register an additional class usable as a set member."""
    global _ITEM_TYPES
    if cls not in _ITEM_TYPES:
        _ITEM_TYPES = _ITEM_TYPES + (cls,)


def register_set_type(cls) -> None:
    """Register an additional class usable as a data set."""
    global _SET_TYPES
    if cls not in _SET_TYPES:
        _SET_TYPES = _SET_TYPES + (cls,)


def is_data_set(value) -> bool:
    """Whether ``value`` is a data set (eager or a registered view)."""
    return isinstance(value, _SET_TYPES)


def group_items_by_key(items: Iterable) -> "dict[Optional[str], list]":
    """Bucket items by their grouping key, first-appearance ordered.

    Single pass: this is the shared engine behind ``keys()`` /
    ``grouped_by_key()`` on both the eager and lazy sets, and the
    dispatcher's ``key``-distribution expansion — all of which were
    previously O(items x keys) membership scans.
    """
    groups: dict[Optional[str], list] = {}
    for item in items:
        bucket = groups.get(item.key)
        if bucket is None:
            groups[item.key] = [item]
        else:
            bucket.append(item)
    return groups


class DataSet:
    """A named, ordered collection of :class:`DataItem`.

    Sets are the unit a composition edge transports: an edge says
    "output set X of function A becomes input set Y of function B".
    """

    __slots__ = ("ident", "_items", "_index", "_wire")

    def __init__(self, ident: str, items: Iterable[DataItem] = ()):
        if not ident:
            raise ValueError("set ident must be non-empty")
        self.ident = ident
        self._items: list[DataItem] = []
        self._index: dict[str, DataItem] = {}
        # Cached per-item wire size (see context.serialized_size);
        # invalidated whenever the item list changes.
        self._wire: Optional[int] = None
        for item in items:
            self.add(item)

    def add(self, item: DataItem) -> None:
        """Append an item (idents inside one set must be unique).

        Accepts any registered item type; a lazy item added here keeps
        its deferred payload (grouping a lazy set never copies data).
        """
        if not isinstance(item, _ITEM_TYPES):
            raise TypeError(f"expected DataItem, got {type(item).__name__}")
        if item.ident in self._index:
            raise ValueError(f"duplicate item ident {item.ident!r} in set {self.ident!r}")
        self._index[item.ident] = item
        self._items.append(item)
        self._wire = None

    def __contains__(self, ident: str) -> bool:
        """Whether an item with this ident is in the set (O(1))."""
        return ident in self._index

    @classmethod
    def renamed(cls, source: "DataSet", ident: str) -> "DataSet":
        """A set with ``source``'s items under a new name.

        Items of an existing set are already validated and unique, so
        this skips the per-item checks of the regular constructor.
        Non-eager sources (the lazy wire-format views) rename through
        their own O(1) ``renamed`` method instead of being copied.
        """
        if source.ident == ident:
            return source
        if not isinstance(source, cls):
            return source.renamed(ident)
        new = cls.__new__(cls)
        if not ident:
            raise ValueError("set ident must be non-empty")
        new.ident = ident
        new._items = list(source._items)
        new._index = dict(source._index)
        new._wire = source._wire
        return new

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> DataItem:
        return self._items[index]

    @property
    def items(self) -> list[DataItem]:
        return list(self._items)

    def item(self, ident: str) -> DataItem:
        """Look an item up by name (O(1))."""
        try:
            return self._index[ident]
        except KeyError:
            raise KeyError(f"no item {ident!r} in set {self.ident!r}") from None

    @property
    def size(self) -> int:
        """Total payload bytes across all items."""
        return sum(item.size for item in self._items)

    def keys(self) -> list[Optional[str]]:
        """Distinct item keys in first-appearance order (O(items))."""
        return list(dict.fromkeys(item.key for item in self._items))

    def grouped_by_key(self) -> "list[DataSet]":
        """Split into per-key sets (for ``key``-distributed edges).

        Single pass over the items; previously this rescanned the whole
        set once per distinct key.
        """
        return [
            DataSet(self.ident, bucket)
            for bucket in group_items_by_key(self._items).values()
        ]

    def __repr__(self) -> str:
        return f"DataSet({self.ident!r}, {len(self._items)} items, {self.size} bytes)"


def total_size(sets: Iterable[DataSet]) -> int:
    """Total payload bytes across several sets."""
    return sum(s.size for s in sets)


register_set_type(DataSet)
