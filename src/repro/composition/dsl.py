"""The composition language — a small DSL for declaring DAGs (§4.1).

Dandelion "provides a composition language to help users express DAGs
of compute functions and communication functions in a more
developer-friendly syntax", inspired by the DSLs of dataflow systems
like Spark and Timely.  This module implements the reproduction's
concrete syntax:

.. code-block:: text

    composition logproc {
        compute access uses access_fn in(token) out(request);
        comm auth protocol http;
        compute fanout uses fanout_fn in(endpoints) out(requests);
        comm fetch protocol http;
        compute render uses render_fn in(pages) out(html);

        input token -> access.token;
        access.request -> auth.request [all];
        auth.response -> fanout.endpoints [all];
        fanout.requests -> fetch.request [each];
        fetch.response -> render.pages [all];
        output render.html -> result;
    }

``# ...`` comments run to end of line.  Nested compositions are
declared with ``compose <node> uses <composition-name>;`` and resolved
against the ``library`` mapping passed to :func:`parse_composition`.

A composition may declare an end-to-end latency target with
``deadline 500ms;`` (units ``us``/``ms``/``s``); the static cost
analysis checks the critical path against it (COST001) and the
dispatcher admission path can consult it.
"""

from __future__ import annotations

import re
from typing import Optional

from .graph import (
    CommunicationNode,
    Composition,
    CompositionError,
    CompositionNode,
    ComputeNode,
    Distribution,
    Edge,
    InputBinding,
    OutputBinding,
)

__all__ = ["parse_composition", "DslError"]


class DslError(CompositionError):
    """Syntax or semantic error in composition-language source."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_PUNCTUATION = {"{", "}", "(", ")", "[", "]", ",", ";", "."}

_DEADLINE_RE = re.compile(r"^([0-9]+(?:\.[0-9]+)?)(us|ms|s)$")
_DEADLINE_UNITS = {"us": 1e-6, "ms": 1e-3, "s": 1.0}


class _Token:
    __slots__ = ("text", "line")

    def __init__(self, text: str, line: int):
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return f"Token({self.text!r}@{self.line})"


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            index += 1
        elif char.isspace():
            index += 1
        elif char == "#":
            while index < length and source[index] != "\n":
                index += 1
        elif source.startswith("->", index):
            tokens.append(_Token("->", line))
            index += 2
        elif char in _PUNCTUATION:
            tokens.append(_Token(char, line))
            index += 1
        elif char.isalnum() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            tokens.append(_Token(source[start:index], line))
        else:
            raise DslError(f"unexpected character {char!r}", line)
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], library: dict[str, Composition]):
        self._tokens = tokens
        self._position = 0
        self._library = library

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _line(self) -> int:
        token = self._peek()
        if token is not None:
            return token.line
        return self._tokens[-1].line if self._tokens else 1

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise DslError("unexpected end of input", self._line())
        self._position += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise DslError(f"expected {text!r}, got {token.text!r}", token.line)
        return token

    def _identifier(self) -> str:
        token = self._next()
        if not (token.text[0].isalpha() or token.text[0] == "_"):
            raise DslError(f"expected identifier, got {token.text!r}", token.line)
        return token.text

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Composition:
        self._expect("composition")
        name = self._identifier()
        self._expect("{")
        nodes: list = []
        edges: list[Edge] = []
        inputs: list[InputBinding] = []
        outputs: list[OutputBinding] = []
        deadline_seconds: Optional[float] = None
        while True:
            token = self._peek()
            if token is None:
                raise DslError("missing closing '}'", self._line())
            if token.text == "}":
                self._next()
                break
            if token.text == "compute":
                nodes.append(self._parse_compute())
            elif token.text == "comm":
                nodes.append(self._parse_comm())
            elif token.text == "compose":
                nodes.append(self._parse_compose())
            elif token.text == "input":
                inputs.append(self._parse_input())
            elif token.text == "output":
                outputs.append(self._parse_output())
            elif token.text == "deadline":
                if deadline_seconds is not None:
                    raise DslError("duplicate deadline statement", token.line)
                deadline_seconds = self._parse_deadline()
            else:
                edges.append(self._parse_edge())
        trailing = self._peek()
        if trailing is not None:
            raise DslError(f"unexpected trailing token {trailing.text!r}", trailing.line)
        try:
            return Composition(
                name, nodes, edges, inputs, outputs,
                deadline_seconds=deadline_seconds,
            )
        except CompositionError as exc:
            raise DslError(str(exc), self._tokens[-1].line) from exc

    def _parse_compute(self) -> ComputeNode:
        self._expect("compute")
        node_name = self._identifier()
        self._expect("uses")
        function_name = self._identifier()
        self._expect("in")
        input_sets = self._parse_name_list()
        self._expect("out")
        output_sets = self._parse_name_list()
        self._expect(";")
        return ComputeNode(node_name, function_name, input_sets, output_sets)

    def _parse_comm(self) -> CommunicationNode:
        self._expect("comm")
        node_name = self._identifier()
        protocol = "http"
        if self._peek() is not None and self._peek().text == "protocol":
            self._next()
            protocol = self._identifier()
        self._expect(";")
        return CommunicationNode(node_name, protocol=protocol)

    def _parse_compose(self) -> CompositionNode:
        token = self._expect("compose")
        node_name = self._identifier()
        self._expect("uses")
        composition_name = self._identifier()
        self._expect(";")
        nested = self._library.get(composition_name)
        if nested is None:
            raise DslError(f"unknown composition {composition_name!r}", token.line)
        return CompositionNode(node_name, nested)

    def _parse_deadline(self) -> float:
        keyword = self._expect("deadline")
        # "500ms" is one token; "0.5s" tokenizes as "0" "." "5s" — join
        # every token up to the ";" and parse the magnitude+unit whole.
        pieces: list[str] = []
        while True:
            token = self._peek()
            if token is None:
                raise DslError("unterminated deadline statement", self._line())
            if token.text == ";":
                self._next()
                break
            pieces.append(self._next().text)
        match = _DEADLINE_RE.match("".join(pieces))
        if match is None:
            raise DslError(
                f"invalid deadline {''.join(pieces)!r}; expected e.g. "
                "'deadline 500ms;' (units us/ms/s)",
                keyword.line,
            )
        return float(match.group(1)) * _DEADLINE_UNITS[match.group(2)]

    def _parse_name_list(self) -> tuple[str, ...]:
        self._expect("(")
        names: list[str] = []
        while True:
            token = self._peek()
            if token is None:
                raise DslError("unterminated name list", self._line())
            if token.text == ")":
                self._next()
                break
            if names:
                self._expect(",")
            names.append(self._identifier())
        return tuple(names)

    def _parse_input(self) -> InputBinding:
        self._expect("input")
        external = self._identifier()
        self._expect("->")
        node, node_set = self._parse_set_ref()
        self._expect(";")
        return InputBinding(external, node, node_set)

    def _parse_output(self) -> OutputBinding:
        self._expect("output")
        node, node_set = self._parse_set_ref()
        self._expect("->")
        external = self._identifier()
        self._expect(";")
        return OutputBinding(external, node, node_set)

    def _parse_edge(self) -> Edge:
        source, source_set = self._parse_set_ref()
        self._expect("->")
        target, target_set = self._parse_set_ref()
        distribution = Distribution.ALL
        token = self._peek()
        if token is not None and token.text == "[":
            opener = self._next()
            word = self._identifier()
            try:
                distribution = Distribution.parse(word)
            except CompositionError as exc:
                raise DslError(str(exc), opener.line) from exc
            self._expect("]")
        self._expect(";")
        return Edge(source, source_set, target, target_set, distribution)

    def _parse_set_ref(self) -> tuple[str, str]:
        node = self._identifier()
        self._expect(".")
        set_name = self._identifier()
        return node, set_name


def parse_composition(source: str, library: Optional[dict[str, Composition]] = None) -> Composition:
    """Parse composition-language source into a validated Composition.

    ``library`` supplies previously registered compositions for
    ``compose ... uses ...`` nesting.
    """
    tokens = _tokenize(source)
    if not tokens:
        raise DslError("empty composition source", 1)
    return _Parser(tokens, library or {}).parse()
