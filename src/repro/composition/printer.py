"""Serializing compositions back to composition-language source.

The inverse of :func:`repro.composition.dsl.parse_composition`: useful
for registering a programmatically built composition over the HTTP
interface, for debugging, and for round-trip testing of the parser.
"""

from __future__ import annotations

from .graph import Composition, Distribution

__all__ = ["composition_to_dsl"]


def composition_to_dsl(composition: Composition) -> str:
    """Render a composition as parseable composition-language source.

    Nested composition nodes are emitted as ``compose`` statements; the
    caller must supply the nested compositions via the parser's
    ``library`` argument when re-parsing.
    """
    lines: list[str] = [f"composition {composition.name} {{"]
    if composition.deadline_seconds is not None:
        # Render in microseconds when that is exact-ish, else seconds;
        # "%g" keeps round-trips stable for the values the DSL accepts.
        micros = composition.deadline_seconds * 1e6
        if micros == int(micros):
            lines.append(f"    deadline {int(micros)}us;")
        else:
            lines.append(f"    deadline {composition.deadline_seconds:g}s;")
    for node in composition.nodes.values():
        if node.kind == "compute":
            inputs = ", ".join(node.input_sets)
            outputs = ", ".join(node.output_sets)
            lines.append(
                f"    compute {node.name} uses {node.function} "
                f"in({inputs}) out({outputs});"
            )
        elif node.kind == "communication":
            lines.append(f"    comm {node.name} protocol {node.protocol};")
        else:
            lines.append(f"    compose {node.name} uses {node.composition.name};")
    for binding in composition.inputs:
        lines.append(f"    input {binding.external} -> {binding.node}.{binding.node_set};")
    for edge in composition.edges:
        suffix = "" if edge.distribution is Distribution.ALL else f" [{edge.distribution.value}]"
        lines.append(
            f"    {edge.source}.{edge.source_set} -> "
            f"{edge.target}.{edge.target_set}{suffix};"
        )
    for binding in composition.outputs:
        lines.append(f"    output {binding.node}.{binding.node_set} -> {binding.external};")
    lines.append("}")
    return "\n".join(lines)
