"""Dandelion's declarative programming model: DAGs + DSL + registry."""

from .dsl import DslError, parse_composition
from .printer import composition_to_dsl
from .graph import (
    COMM_INPUT_SET,
    COMM_OUTPUT_SET,
    CommunicationNode,
    Composition,
    CompositionError,
    CompositionNode,
    ComputeNode,
    Distribution,
    Edge,
    InputBinding,
    OutputBinding,
)
from .registry import (
    DEFAULT_MEMORY_LIMIT,
    CompositionVerificationError,
    FunctionBinary,
    PurityVerificationError,
    Registry,
    RegistryError,
)

__all__ = [
    "COMM_INPUT_SET",
    "COMM_OUTPUT_SET",
    "CommunicationNode",
    "Composition",
    "CompositionError",
    "CompositionNode",
    "ComputeNode",
    "Distribution",
    "Edge",
    "InputBinding",
    "OutputBinding",
    "DslError",
    "parse_composition",
    "composition_to_dsl",
    "DEFAULT_MEMORY_LIMIT",
    "FunctionBinary",
    "CompositionVerificationError",
    "PurityVerificationError",
    "Registry",
    "RegistryError",
]
