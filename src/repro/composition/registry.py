"""Function and composition registry.

The dispatcher "maintains a registry of all registered composition
DAGs, function binaries, and associated metadata" (§5).  Users register
a *function binary* (here: a Python callable standing in for the
compiled artifact, plus the metadata the platform needs — declared
memory requirement, binary size for load-cost modelling, engine type)
and compositions referencing those binaries by name.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from .graph import Composition

__all__ = [
    "FunctionBinary",
    "Registry",
    "RegistryError",
    "PurityVerificationError",
    "CompositionVerificationError",
]

DEFAULT_MEMORY_LIMIT = 64 * 1024 * 1024  # bytes, like a Lambda memory setting
DEFAULT_BINARY_SIZE = 256 * 1024         # bytes of executable to load


class RegistryError(Exception):
    """Raised for unknown or conflicting registrations."""


class PurityVerificationError(RegistryError):
    """Static purity verification rejected a function at registration.

    Carries the error-severity diagnostics so callers (and tests) can
    inspect exactly which contract the function would have violated
    mid-invocation.
    """

    def __init__(self, message: str, diagnostics):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class CompositionVerificationError(RegistryError):
    """Static dataflow analysis rejected a composition at registration.

    Carries the error-severity RACE/CON/COST diagnostics so callers can
    see exactly which cross-node contract the composition would have
    broken at run time.
    """

    def __init__(self, message: str, diagnostics):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


@dataclass(frozen=True)
class FunctionBinary:
    """A registered compute function and its platform metadata.

    ``entry_point`` is the user's pure function: it receives the
    :class:`~repro.data.vfs.VirtualFileSystem` for its invocation and
    must produce outputs only through it (purity is enforced by the
    compute-function harness).  ``memory_limit`` is the user-declared
    context size ("like in AWS Lambda"); ``binary_size`` drives the
    load-from-disk cost model; ``compute_cost`` optionally overrides
    the modelled execution time for an invocation (seconds), either as
    a constant or a callable of the input size in bytes.
    """

    name: str
    entry_point: Callable
    memory_limit: int = DEFAULT_MEMORY_LIMIT
    binary_size: int = DEFAULT_BINARY_SIZE
    compute_cost: "Optional[float | Callable[[int], float]]" = None
    language: str = "c"

    def __post_init__(self):
        if not self.name:
            raise RegistryError("function name must be non-empty")
        if not callable(self.entry_point):
            raise RegistryError("entry_point must be callable")
        if self.memory_limit <= 0:
            raise RegistryError("memory_limit must be positive")
        if self.binary_size <= 0:
            raise RegistryError("binary_size must be positive")

    def modelled_compute_seconds(self, input_bytes: int) -> Optional[float]:
        """Modelled execution time for this binary, if one is declared."""
        if self.compute_cost is None:
            return None
        if callable(self.compute_cost):
            return float(self.compute_cost(input_bytes))
        return float(self.compute_cost)


class Registry:
    """Registered function binaries and compositions, by name."""

    def __init__(self):
        self._functions: dict[str, FunctionBinary] = {}
        self._compositions: dict[str, Composition] = {}

    # -- functions --------------------------------------------------------

    def register_function(
        self, binary: FunctionBinary, verify: Optional[str] = None
    ) -> None:
        """Register a function binary, optionally verifying purity first.

        ``verify`` selects the static-verification mode (§4.1: compute
        functions "do not issue syscalls" — proven here *before* the
        function ever runs, instead of terminating it mid-invocation):

        - ``None`` (default): no static pass, dynamic guard only;
        - ``"warn"``: run the verifier, surface findings as
          :class:`~repro.analysis.purity_check.PurityWarning`;
        - ``"strict"``: reject the registration with
          :class:`PurityVerificationError` on any error-severity
          finding.
        """
        if verify not in (None, "warn", "strict"):
            raise RegistryError(
                f"unknown verify mode {verify!r}; expected 'warn' or 'strict'"
            )
        if binary.name in self._functions:
            raise RegistryError(f"function {binary.name!r} already registered")
        if verify is not None:
            # Imported lazily: the analysis package depends on the
            # composition model, not the other way around.
            from ..analysis.diagnostics import render_text
            from ..analysis.purity_check import PurityWarning, verify_purity

            report = verify_purity(binary)
            if verify == "strict" and not report.ok:
                raise PurityVerificationError(
                    f"function {binary.name!r} failed static purity "
                    f"verification:\n{render_text(report.errors)}",
                    report.errors,
                )
            if report.diagnostics:
                warnings.warn(
                    f"function {binary.name!r}: "
                    f"{render_text(report.diagnostics)}",
                    PurityWarning,
                    stacklevel=2,
                )
        self._functions[binary.name] = binary

    def function(self, name: str) -> FunctionBinary:
        try:
            return self._functions[name]
        except KeyError:
            raise RegistryError(f"unknown function {name!r}") from None

    def has_function(self, name: str) -> bool:
        return name in self._functions

    @property
    def function_names(self) -> list[str]:
        return sorted(self._functions)

    # -- compositions -------------------------------------------------------

    def register_composition(
        self, composition: Composition, verify: Optional[str] = None
    ) -> None:
        """Register a composition, optionally dataflow-verifying it first.

        ``verify`` selects the whole-composition static analysis
        (:mod:`repro.analysis.dataflow`) mode:

        - ``None`` (default): structural validation only;
        - ``"warn"``: run the analyzer, surface findings as
          :class:`~repro.analysis.purity_check.PurityWarning`;
        - ``"strict"``: reject the registration with
          :class:`CompositionVerificationError` on any error-severity
          RACE/CON/COST finding.
        """
        if verify not in (None, "warn", "strict"):
            raise RegistryError(
                f"unknown verify mode {verify!r}; expected 'warn' or 'strict'"
            )
        if composition.name in self._compositions:
            raise RegistryError(
                f"composition {composition.name!r} already registered"
            )
        missing = [
            name
            for name in sorted(composition.required_functions())
            if name not in self._functions
        ]
        if missing:
            raise RegistryError(
                f"composition {composition.name!r} references unregistered "
                f"functions: {', '.join(missing)}"
            )
        if verify is not None:
            from ..analysis.dataflow import analyze_composition
            from ..analysis.diagnostics import render_text
            from ..analysis.purity_check import PurityWarning

            report = analyze_composition(composition, self)
            if verify == "strict" and not report.ok:
                errors = [
                    d for d in report.diagnostics if d.severity == "error"
                ]
                raise CompositionVerificationError(
                    f"composition {composition.name!r} failed static "
                    f"dataflow verification:\n{render_text(errors)}",
                    errors,
                )
            if report.diagnostics:
                warnings.warn(
                    f"composition {composition.name!r}: "
                    f"{render_text(report.diagnostics)}",
                    PurityWarning,
                    stacklevel=2,
                )
        self._compositions[composition.name] = composition

    def composition(self, name: str) -> Composition:
        try:
            return self._compositions[name]
        except KeyError:
            raise RegistryError(f"unknown composition {name!r}") from None

    def has_composition(self, name: str) -> bool:
        return name in self._compositions

    @property
    def composition_names(self) -> list[str]:
        return sorted(self._compositions)

    @property
    def compositions(self) -> dict[str, Composition]:
        """Mapping view used as the DSL nesting library."""
        return dict(self._compositions)
