"""Composition graphs — Dandelion's declarative programming model (§4.1).

A complete Dandelion program (a *composition*) is a graph ``G = (V,E)``
where vertices are (i) user-provided compute functions, (ii)
platform-provided communication functions, or (iii) nested
compositions.  A directed edge ``(V1, V2, M)`` states that one output
set of ``V1`` is an input set of ``V2``; the metadata descriptor ``M``
names the two sets and carries a distribution keyword — ``all``,
``each`` or ``key`` — saying whether all items go to one downstream
instance, each item to its own instance, or items are grouped by key.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Distribution",
    "ComputeNode",
    "CommunicationNode",
    "CompositionNode",
    "Edge",
    "InputBinding",
    "OutputBinding",
    "Composition",
    "CompositionError",
]


class CompositionError(Exception):
    """Raised when a composition graph is malformed."""


class Distribution(enum.Enum):
    """How items on an edge are spread over downstream instances."""

    ALL = "all"    # every item to a single instance
    EACH = "each"  # one instance per item
    KEY = "key"    # one instance per distinct item key

    @classmethod
    def parse(cls, word: str) -> "Distribution":
        try:
            return cls(word.lower())
        except ValueError:
            raise CompositionError(
                f"unknown distribution {word!r}; expected one of all/each/key"
            ) from None


@dataclass(frozen=True)
class ComputeNode:
    """A vertex running user-provided pure compute code.

    ``function`` names the registered function binary; ``input_sets``
    and ``output_sets`` are the declared interface.
    """

    name: str
    function: str
    input_sets: tuple[str, ...]
    output_sets: tuple[str, ...]

    kind = "compute"

    def __post_init__(self):
        _check_node_sets(self)


# Communication functions have a fixed platform-defined interface:
# they consume formatted requests and produce responses.
COMM_INPUT_SET = "request"
COMM_OUTPUT_SET = "response"


@dataclass(frozen=True)
class CommunicationNode:
    """A vertex invoking a platform communication function.

    The implementation is trusted platform code (users can invoke but
    not modify it).  Currently the HTTP protocol is supported, matching
    the prototype; the field exists so further protocols can be added.
    """

    name: str
    protocol: str = "http"

    kind = "communication"
    input_sets: tuple[str, ...] = (COMM_INPUT_SET,)
    output_sets: tuple[str, ...] = (COMM_OUTPUT_SET,)

    def __post_init__(self):
        if not self.name:
            raise CompositionError("node name must be non-empty")


@dataclass(frozen=True)
class CompositionNode:
    """A vertex that is itself a composition (nesting, §4.1)."""

    name: str
    composition: "Composition"

    kind = "composition"

    @property
    def input_sets(self) -> tuple[str, ...]:
        return tuple(binding.external for binding in self.composition.inputs)

    @property
    def output_sets(self) -> tuple[str, ...]:
        return tuple(binding.external for binding in self.composition.outputs)


def _check_node_sets(node) -> None:
    if not node.name:
        raise CompositionError("node name must be non-empty")
    for group_name, group in (("input", node.input_sets), ("output", node.output_sets)):
        if len(set(group)) != len(group):
            raise CompositionError(f"duplicate {group_name} set on node {node.name!r}")


@dataclass(frozen=True)
class Edge:
    """Directed dataflow edge with its metadata descriptor."""

    source: str       # node name
    source_set: str   # output set of source
    target: str       # node name
    target_set: str   # input set of target
    distribution: Distribution = Distribution.ALL


@dataclass(frozen=True)
class InputBinding:
    """Maps a composition-level input name onto a node input set."""

    external: str
    node: str
    node_set: str


@dataclass(frozen=True)
class OutputBinding:
    """Maps a node output set onto a composition-level output name."""

    external: str
    node: str
    node_set: str


class Composition:
    """A validated DAG of compute/communication/composition vertices."""

    def __init__(
        self,
        name: str,
        nodes: list,
        edges: list[Edge],
        inputs: list[InputBinding],
        outputs: list[OutputBinding],
        *,
        deadline_seconds: Optional[float] = None,
    ):
        if not name:
            raise CompositionError("composition name must be non-empty")
        if deadline_seconds is not None:
            deadline_seconds = float(deadline_seconds)
            if deadline_seconds <= 0:
                raise CompositionError(
                    f"deadline must be positive, got {deadline_seconds}"
                )
        self.name = name
        # Declared end-to-end latency target; the static cost analysis
        # (repro.analysis.dataflow) checks the critical path against it
        # and the dispatcher can use it for admission.
        self.deadline_seconds = deadline_seconds
        self.nodes = {node.name: node for node in nodes}
        if len(self.nodes) != len(nodes):
            raise CompositionError("duplicate node names")
        self.edges = list(edges)
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self._validate()

    # -- validation -------------------------------------------------------

    def _validate(self) -> None:
        self._validate_edges()
        self._validate_bindings()
        self._validate_feeds()
        self._topo_order = self._topological_order()

    def _validate_edges(self) -> None:
        for edge in self.edges:
            source = self.nodes.get(edge.source)
            target = self.nodes.get(edge.target)
            if source is None:
                raise CompositionError(f"edge references unknown node {edge.source!r}")
            if target is None:
                raise CompositionError(f"edge references unknown node {edge.target!r}")
            if edge.source_set not in source.output_sets:
                raise CompositionError(
                    f"{edge.source!r} has no output set {edge.source_set!r}"
                )
            if edge.target_set not in target.input_sets:
                raise CompositionError(
                    f"{edge.target!r} has no input set {edge.target_set!r}"
                )

    def _validate_bindings(self) -> None:
        seen_external = set()
        for binding in self.inputs:
            if binding.external in seen_external:
                raise CompositionError(f"duplicate input binding {binding.external!r}")
            seen_external.add(binding.external)
            node = self.nodes.get(binding.node)
            if node is None or binding.node_set not in node.input_sets:
                raise CompositionError(
                    f"input binding targets unknown set {binding.node}.{binding.node_set}"
                )
        seen_external = set()
        for binding in self.outputs:
            if binding.external in seen_external:
                raise CompositionError(f"duplicate output binding {binding.external!r}")
            seen_external.add(binding.external)
            node = self.nodes.get(binding.node)
            if node is None or binding.node_set not in node.output_sets:
                raise CompositionError(
                    f"output binding references unknown set {binding.node}.{binding.node_set}"
                )
        if not self.outputs:
            raise CompositionError("composition must declare at least one output")

    def _validate_feeds(self) -> None:
        # Every node input set must be fed by exactly one source (an
        # edge or a composition input); otherwise the function would
        # never become ready, or would race on two producers.
        feeds: dict[tuple[str, str], int] = {}
        for edge in self.edges:
            feeds[(edge.target, edge.target_set)] = feeds.get((edge.target, edge.target_set), 0) + 1
        for binding in self.inputs:
            feeds[(binding.node, binding.node_set)] = feeds.get((binding.node, binding.node_set), 0) + 1
        for node in self.nodes.values():
            for set_name in node.input_sets:
                count = feeds.get((node.name, set_name), 0)
                if count == 0:
                    raise CompositionError(
                        f"input set {node.name}.{set_name} has no producer"
                    )
                if count > 1:
                    raise CompositionError(
                        f"input set {node.name}.{set_name} has {count} producers"
                    )

    def _topological_order(self) -> list[str]:
        indegree = {name: 0 for name in self.nodes}
        successors: dict[str, list[str]] = {name: [] for name in self.nodes}
        for edge in self.edges:
            indegree[edge.target] += 1
            successors[edge.source].append(edge.target)
        ready = sorted(name for name, degree in indegree.items() if degree == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for successor in successors[name]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self.nodes):
            raise CompositionError(f"composition {self.name!r} contains a cycle")
        return order

    # -- queries ----------------------------------------------------------

    @property
    def topological_order(self) -> list[str]:
        """Node names in a valid execution order."""
        return list(self._topo_order)

    def incoming_edges(self, node_name: str) -> list[Edge]:
        return [edge for edge in self.edges if edge.target == node_name]

    def outgoing_edges(self, node_name: str) -> list[Edge]:
        return [edge for edge in self.edges if edge.source == node_name]

    def consumers_of(self, node_name: str, set_name: str) -> list[Edge]:
        """Edges that consume a given output set."""
        return [
            edge
            for edge in self.edges
            if edge.source == node_name and edge.source_set == set_name
        ]

    def compute_nodes(self) -> list[ComputeNode]:
        return [n for n in self.nodes.values() if n.kind == "compute"]

    def communication_nodes(self) -> list[CommunicationNode]:
        return [n for n in self.nodes.values() if n.kind == "communication"]

    def required_functions(self) -> set[str]:
        """Names of all function binaries this composition (recursively) needs."""
        needed = {node.function for node in self.compute_nodes()}
        for node in self.nodes.values():
            if node.kind == "composition":
                needed |= node.composition.required_functions()
        return needed

    def __repr__(self) -> str:
        return (
            f"Composition({self.name!r}, {len(self.nodes)} nodes, "
            f"{len(self.edges)} edges)"
        )
