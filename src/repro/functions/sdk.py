"""SDK helpers for writing Dandelion compute functions (§4.2).

The prototype ships C/C++ SDKs (and a CPython build) that compile user
code against hlibc; this module is the Python-native equivalent: a
decorator that turns a plain function into a registered-ready
:class:`FunctionBinary`, plus convenience wrappers over the virtual
filesystem for the common "read all items of a set / write items to a
set" patterns, and helpers for formatting the HTTP requests consumed by
communication functions.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from ..composition.registry import (
    DEFAULT_BINARY_SIZE,
    DEFAULT_MEMORY_LIMIT,
    FunctionBinary,
)
from ..data.items import DataItem
from ..data.vfs import VirtualFileSystem

__all__ = [
    "compute_function",
    "parse_http_response_item",
    "read_items",
    "read_all_bytes",
    "write_item",
    "format_http_request",
    "parse_http_request_item",
]


def compute_function(
    name: Optional[str] = None,
    memory_limit: int = DEFAULT_MEMORY_LIMIT,
    binary_size: int = DEFAULT_BINARY_SIZE,
    compute_cost: "Optional[float | Callable[[int], float]]" = None,
    language: str = "python",
) -> Callable[[Callable], FunctionBinary]:
    """Decorator producing a :class:`FunctionBinary` from a callable::

        @compute_function(memory_limit=1 << 20)
        def double(vfs):
            value = int(vfs.read_text("/in/data/value"))
            vfs.write_text("/out/result/value", str(2 * value))

    The callable receives the invocation's
    :class:`~repro.data.vfs.VirtualFileSystem`.
    """

    def decorator(func: Callable) -> FunctionBinary:
        return FunctionBinary(
            name=name or func.__name__,
            entry_point=func,
            memory_limit=memory_limit,
            binary_size=binary_size,
            compute_cost=compute_cost,
            language=language,
        )

    return decorator


def read_items(vfs: VirtualFileSystem, set_name: str) -> list[DataItem]:
    """All items of an input set, as DataItems (name, bytes, no key)."""
    return [
        DataItem(item_name, vfs.read_bytes(f"/in/{set_name}/{item_name}"))
        for item_name in vfs.listdir(f"/in/{set_name}")
    ]


def read_all_bytes(vfs: VirtualFileSystem, set_name: str) -> bytes:
    """Concatenated payloads of every item in an input set."""
    return b"".join(item.data for item in read_items(vfs, set_name))


def write_item(
    vfs: VirtualFileSystem,
    set_name: str,
    item_name: str,
    data: bytes,
    key: Optional[str] = None,
) -> None:
    """Write one output item (bytes) into an output set folder."""
    vfs.write_bytes(f"/out/{set_name}/{item_name}", data, key=key)


def format_http_request(
    method: str,
    url: str,
    body: bytes = b"",
    headers: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialise an HTTP request item for a communication function.

    Communication functions consume request items in this JSON
    envelope; the engine re-validates everything (§6.3), so the format
    is a convenience, not a trust boundary.
    """
    envelope = {
        "method": method,
        "url": url,
        "headers": headers or {},
        "body_hex": body.hex(),
    }
    return json.dumps(envelope).encode("utf-8")


def parse_http_request_item(data: bytes) -> dict:
    """Decode a request envelope (used by the communication engine)."""
    envelope = json.loads(data.decode("utf-8"))
    if not isinstance(envelope, dict):
        raise ValueError("request envelope must be a JSON object")
    required = {"method", "url", "headers", "body_hex"}
    missing = required - set(envelope)
    if missing:
        raise ValueError(f"request envelope missing fields: {sorted(missing)}")
    envelope["body"] = bytes.fromhex(envelope.pop("body_hex"))
    return envelope


def parse_http_response_item(data: bytes) -> dict:
    """Decode a response envelope produced by a communication function.

    Returns a dict with ``status`` (int), ``body`` (bytes) and
    optionally ``error``/``reason`` strings.
    """
    envelope = json.loads(data.decode("utf-8"))
    if not isinstance(envelope, dict) or "status" not in envelope:
        raise ValueError("response envelope must be a JSON object with 'status'")
    if "body_hex" in envelope:
        envelope["body"] = bytes.fromhex(envelope.pop("body_hex"))
    else:
        envelope.setdefault("body", b"")
    return envelope
