"""Compute-function harness, purity guard, and developer SDK."""

from .compute import ComputeResult, run_compute_function
from .interpreter import SAFE_BUILTINS, SourceError, python_function_from_source
from .purity import PURITY_BLOCKED_OPERATIONS, purity_guard
from .sdk import (
    compute_function,
    parse_http_response_item,
    format_http_request,
    parse_http_request_item,
    read_all_bytes,
    read_items,
    write_item,
)

__all__ = [
    "ComputeResult",
    "run_compute_function",
    "SAFE_BUILTINS",
    "SourceError",
    "python_function_from_source",
    "PURITY_BLOCKED_OPERATIONS",
    "purity_guard",
    "compute_function",
    "parse_http_response_item",
    "format_http_request",
    "parse_http_request_item",
    "read_all_bytes",
    "read_items",
    "write_item",
]
