"""Purity enforcement for compute functions.

Dandelion compute functions "do not issue syscalls" (§1 footnote):
inputs are pre-loaded into the function's memory region, file access
goes through the in-memory virtual filesystem, and "functions requiring
system calls (e.g., mmap, mprotect, socket or threading) have stub
implementations, returning appropriate error codes" (§4.1).  The
process backend goes further and terminates functions caught making a
syscall (§6.2).

The reproduction enforces the same invariant on Python callables: while
a compute function runs, the OS-facing entry points a Python function
would use to escape its sandbox — ``open``, sockets, subprocesses,
``os.system`` and friends, thread creation — are replaced with stubs
that raise :class:`~repro.errors.SyscallBlocked`.  The harness converts
that into a reported function failure, matching the prototype's
"terminate and notify the user" behaviour.

Entering the guard is O(1): the stub table is built once at import, so
enter/exit reduce to a fixed getattr/setattr loop over ~15 entries
(originals are captured at enter time, keeping monkeypatching in tests
well-behaved).  The guard is re-entrant with depth counting, which also
gives an *engine-scoped* mode for free: wrap a batch of compute runs in
one outer ``purity_guard()`` and every inner per-function guard costs
only a counter increment — the setattr loop is paid once per batch.
:class:`~repro.engines.compute_engine.ComputeEngine` exposes this as
its ``batch_guard`` option.

This is an in-process guard, not a hardware boundary: the real system
gets memory isolation from KVM/CHERI/processes/rWasm.  What the guard
preserves is the *programming-model* contract that the execution system
relies on — compute functions cannot block on I/O, so engines can run
them to completion on a dedicated core.
"""

from __future__ import annotations

import builtins
import io
import os
import pathlib
import socket
import subprocess
import threading

from ..errors import SyscallBlocked

__all__ = ["purity_guard", "PURITY_BLOCKED_OPERATIONS"]

# Operation name -> (module-like object, attribute). Each is replaced by
# a raising stub while a compute function executes.
PURITY_BLOCKED_OPERATIONS = [
    ("open", builtins, "open"),
    ("io.open", io, "open"),
    ("os.open", os, "open"),
    ("os.system", os, "system"),
    ("os.popen", os, "popen"),
    ("os.fork", os, "fork") if hasattr(os, "fork") else None,
    ("os.remove", os, "remove"),
    ("os.rename", os, "rename"),
    ("os.mkdir", os, "mkdir"),
    ("os.unlink", os, "unlink"),
    ("os.rmdir", os, "rmdir"),
    ("os.replace", os, "replace"),
    ("pathlib.Path.open", pathlib.Path, "open"),
    ("socket.socket", socket, "socket"),
    ("socket.create_connection", socket, "create_connection"),
    ("socket.socketpair", socket, "socketpair"),
    ("subprocess.Popen", subprocess, "Popen"),
    ("subprocess.run", subprocess, "run"),
    ("threading.Thread.start", threading.Thread, "start"),
]
PURITY_BLOCKED_OPERATIONS = [entry for entry in PURITY_BLOCKED_OPERATIONS if entry]


def _make_stub(operation_name: str):
    def stub(*_args, **_kwargs):
        raise SyscallBlocked(
            f"compute functions cannot use {operation_name}; "
            "use the virtual filesystem for data and communication "
            "functions for I/O"
        )

    return stub


# Built once at import: (holder, attribute, stub) per blocked operation.
_STUB_TABLE = [
    (holder, attribute, _make_stub(operation_name))
    for operation_name, holder, attribute in PURITY_BLOCKED_OPERATIONS
]

_guard_depth = 0
# Originals saved by the outermost enter: (holder, attribute, original).
_saved: list[tuple[object, str, object]] = []


class _PurityGuard:
    """Re-entrant context manager installing the import-time stub table.

    Only the outermost enter/exit touch the patched attributes; nested
    guards just move the depth counter, so holding an outer guard makes
    every inner one O(1) with no setattr work at all.
    """

    __slots__ = ()

    def __enter__(self) -> "_PurityGuard":
        global _guard_depth
        _guard_depth += 1
        if _guard_depth == 1:
            for holder, attribute, stub in _STUB_TABLE:
                _saved.append((holder, attribute, getattr(holder, attribute)))
                setattr(holder, attribute, stub)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _guard_depth
        _guard_depth -= 1
        if _guard_depth == 0 and _saved:
            for holder, attribute, original in _saved:
                setattr(holder, attribute, original)
            _saved.clear()


_GUARD = _PurityGuard()


def purity_guard() -> _PurityGuard:
    """Context manager blocking syscall-like operations.

    Re-entrant: nested guards keep the stubs installed until the
    outermost guard exits, then restore the originals (captured at the
    outermost enter, so attribute patches made before entering are
    restored faithfully).
    """
    return _GUARD
