"""Purity enforcement for compute functions.

Dandelion compute functions "do not issue syscalls" (§1 footnote):
inputs are pre-loaded into the function's memory region, file access
goes through the in-memory virtual filesystem, and "functions requiring
system calls (e.g., mmap, mprotect, socket or threading) have stub
implementations, returning appropriate error codes" (§4.1).  The
process backend goes further and terminates functions caught making a
syscall (§6.2).

The reproduction enforces the same invariant on Python callables: while
a compute function runs, the OS-facing entry points a Python function
would use to escape its sandbox — ``open``, sockets, subprocesses,
``os.system`` and friends, thread creation — are replaced with stubs
that raise :class:`~repro.errors.SyscallBlocked`.  The harness converts
that into a reported function failure, matching the prototype's
"terminate and notify the user" behaviour.

This is an in-process guard, not a hardware boundary: the real system
gets memory isolation from KVM/CHERI/processes/rWasm.  What the guard
preserves is the *programming-model* contract that the execution system
relies on — compute functions cannot block on I/O, so engines can run
them to completion on a dedicated core.
"""

from __future__ import annotations

import builtins
import io
import os
import socket
import subprocess
import threading
from contextlib import contextmanager

from ..errors import SyscallBlocked

__all__ = ["purity_guard", "PURITY_BLOCKED_OPERATIONS"]

# Operation name -> (module-like object, attribute). Each is replaced by
# a raising stub while a compute function executes.
PURITY_BLOCKED_OPERATIONS = [
    ("open", builtins, "open"),
    ("io.open", io, "open"),
    ("os.open", os, "open"),
    ("os.system", os, "system"),
    ("os.popen", os, "popen"),
    ("os.fork", os, "fork") if hasattr(os, "fork") else None,
    ("os.remove", os, "remove"),
    ("os.rename", os, "rename"),
    ("os.mkdir", os, "mkdir"),
    ("socket.socket", socket, "socket"),
    ("socket.create_connection", socket, "create_connection"),
    ("subprocess.Popen", subprocess, "Popen"),
    ("subprocess.run", subprocess, "run"),
    ("threading.Thread.start", threading.Thread, "start"),
]
PURITY_BLOCKED_OPERATIONS = [entry for entry in PURITY_BLOCKED_OPERATIONS if entry]


def _make_stub(operation_name: str):
    def stub(*_args, **_kwargs):
        raise SyscallBlocked(
            f"compute functions cannot use {operation_name}; "
            "use the virtual filesystem for data and communication "
            "functions for I/O"
        )

    return stub


_guard_depth = 0


@contextmanager
def purity_guard():
    """Context manager blocking syscall-like operations.

    Re-entrant: nested guards keep the stubs installed until the
    outermost guard exits, then restore the originals.
    """
    global _guard_depth
    saved: list[tuple[object, str, object]] = []
    _guard_depth += 1
    try:
        if _guard_depth == 1:
            for operation_name, holder, attribute in PURITY_BLOCKED_OPERATIONS:
                saved.append((holder, attribute, getattr(holder, attribute)))
                setattr(holder, attribute, _make_stub(operation_name))
        yield
    finally:
        _guard_depth -= 1
        if _guard_depth == 0 and saved:
            for holder, attribute, original in saved:
                setattr(holder, attribute, original)
        elif _guard_depth == 0:
            # Outermost guard exited but installed nothing (should not
            # happen); restore is a no-op.
            pass


# When depth > 1 the inner guard saved nothing, so restoration happens
# exactly once, at the outermost exit.  The module keeps the saved list
# local to each guard invocation; only the outermost has a non-empty
# one.
