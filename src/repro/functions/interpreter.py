"""Registering compute functions from Python *source text* (§4.2).

The prototype supports Python functions by compiling the CPython
interpreter with its C SDK; users ship source, the platform supplies
the interpreter.  The reproduction mirrors that registration path:
:func:`python_function_from_source` takes source text, byte-compiles it
in a restricted namespace (no ``__import__``, no ambient builtins
beyond a safe allow-list — the purity guard still applies at run time
on top), and wraps the contained entry point as a
:class:`FunctionBinary` whose ``binary_size`` reflects interpreter +
source, like a shipped artifact.
"""

from __future__ import annotations

import builtins
import types
from typing import Callable, Optional

from ..composition.registry import FunctionBinary
from ..errors import DandelionError

__all__ = ["python_function_from_source", "SourceError", "SAFE_BUILTINS"]

# Interpreter footprint dominating the artifact size (the paper ships
# CPython compiled against hlibc).
_INTERPRETER_BINARY_BYTES = 4 * 1024 * 1024

# Builtins available to sourced functions: computation and data
# manipulation, no I/O and no dynamic import.
SAFE_BUILTINS = {
    name: getattr(builtins, name)
    for name in (
        "abs", "all", "any", "bin", "bool", "bytearray", "bytes", "chr",
        "dict", "divmod", "enumerate", "filter", "float", "format",
        "frozenset", "hash", "hex", "int", "isinstance", "issubclass",
        "iter", "len", "list", "map", "max", "min", "next", "oct", "ord",
        "pow", "range", "repr", "reversed", "round", "set", "slice",
        "sorted", "str", "sum", "tuple", "zip", "ValueError", "TypeError",
        "KeyError", "IndexError", "StopIteration", "Exception",
        "ArithmeticError", "ZeroDivisionError", "True", "False", "None",
    )
    if hasattr(builtins, name)
}


class SourceError(DandelionError):
    """The submitted source failed to compile or lacks an entry point."""


def python_function_from_source(
    name: str,
    source: str,
    entry_point: str = "main",
    memory_limit: int = 64 * 1024 * 1024,
    compute_cost: "Optional[float | Callable[[int], float]]" = None,
) -> FunctionBinary:
    """Compile user source text into a registerable function binary.

    The source must define ``def <entry_point>(vfs): ...``.  It is
    executed once at registration (module top level) inside the
    restricted namespace; the entry point then runs per invocation
    under the usual purity guard.
    """
    try:
        code = compile(source, filename=f"<{name}>", mode="exec")
    except SyntaxError as exc:
        raise SourceError(f"function {name!r} failed to compile: {exc}") from exc
    from .hlib import HLIB_NAMESPACE

    # Sourced functions get the safe builtins plus hlib — the same
    # "math functions, formatting, etc" surface hlibc offers (§4.1).
    namespace: dict = {"__builtins__": dict(SAFE_BUILTINS), "hlib": HLIB_NAMESPACE}
    try:
        exec(code, namespace)  # noqa: S102 - deliberately sandboxed exec
    except Exception as exc:  # noqa: BLE001 - surface module-level errors
        raise SourceError(f"function {name!r} failed at import time: {exc}") from exc
    entry = namespace.get(entry_point)
    if not callable(entry):
        raise SourceError(
            f"function {name!r} does not define a callable {entry_point!r}"
        )
    # Stash the source on every function the module defined, so the
    # static purity verifier (repro.analysis.purity_check) can parse
    # sourced functions — and their helpers — instead of falling back
    # to a bytecode scan.
    for value in namespace.values():
        if isinstance(value, types.FunctionType):
            value.__dandelion_source__ = source
    return FunctionBinary(
        name=name,
        entry_point=entry,
        memory_limit=memory_limit,
        binary_size=_INTERPRETER_BINARY_BYTES + len(source.encode("utf-8")),
        compute_cost=compute_cost,
        language="python-source",
    )
