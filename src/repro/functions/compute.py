"""Compute-function execution harness.

Bridges a registered :class:`~repro.composition.registry.FunctionBinary`
and the data plane: builds the hlibc-style virtual filesystem over the
invocation's input sets, runs the user callable under the purity guard,
collects output sets, and enforces the declared memory limit.

The harness is *functionally* what a compute engine does inside a
sandbox; the timing of the run is modelled separately by the isolation
backends (:mod:`repro.backends`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..composition.registry import FunctionBinary
from ..data.items import DataSet, total_size
from ..data.vfs import VirtualFileSystem
from ..errors import FunctionFailure, MemoryLimitExceeded, SyscallBlocked
from .purity import purity_guard

__all__ = ["run_compute_function", "ComputeResult"]


@dataclass(frozen=True)
class ComputeResult:
    """Outcome of one compute-function invocation."""

    outputs: list[DataSet]
    input_bytes: int
    output_bytes: int


def run_compute_function(
    binary: FunctionBinary,
    input_sets: list[DataSet],
    output_set_names: list[str],
    input_bytes: "int | None" = None,
) -> ComputeResult:
    """Execute ``binary`` over ``input_sets``, producing declared outputs.

    ``input_bytes`` lets a caller that already summed the input payloads
    (the isolation backends do, for the cost model) skip the recount.

    Raises :class:`FunctionFailure` if the user code raises (including
    attempts at blocked syscalls), :class:`MemoryLimitExceeded` if input
    plus output data do not fit the declared context size.
    """
    if input_bytes is None:
        input_bytes = total_size(input_sets)
    if input_bytes > binary.memory_limit:
        raise MemoryLimitExceeded(
            f"{binary.name}: inputs of {input_bytes} bytes exceed the "
            f"declared memory limit of {binary.memory_limit}"
        )
    vfs = VirtualFileSystem(input_sets, output_set_names)
    try:
        with purity_guard():
            binary.entry_point(vfs)
    except SyscallBlocked as exc:
        # Matches the prototype: the function is terminated and the
        # user notified, rather than the syscall silently succeeding.
        raise FunctionFailure(binary.name, exc) from exc
    except Exception as exc:  # noqa: BLE001 - user code may raise anything
        raise FunctionFailure(binary.name, exc) from exc
    outputs = vfs.collect_outputs()
    output_bytes = total_size(outputs)
    if input_bytes + output_bytes > binary.memory_limit:
        raise MemoryLimitExceeded(
            f"{binary.name}: outputs of {output_bytes} bytes overflow the "
            f"declared memory limit of {binary.memory_limit}"
        )
    return ComputeResult(outputs=outputs, input_bytes=input_bytes, output_bytes=output_bytes)
