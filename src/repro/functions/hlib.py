"""hlib — the utility library available inside compute functions (§4.1).

hlibc/hlibc++ give the prototype's compute functions "familiar
interfaces for memory allocation, local filesystem operations, and
basic utilities like math functions, formatting, etc" without any
syscalls.  The reproduction's equivalent is this module: a namespace of
pure, allocation-only utilities that is injected into source-registered
functions (:mod:`repro.functions.interpreter`) as ``hlib`` and can be
imported normally by decorator-registered functions.

Everything here is syscall-free by construction: no file, socket,
process, clock or environment access — just computation over arguments.
"""

from __future__ import annotations

import base64 as _base64
import json as _json
import math as _math
import re as _re
import struct as _struct
import zlib as _zlib

__all__ = [
    "json_dumps",
    "json_loads",
    "b64encode",
    "b64decode",
    "crc32",
    "adler32",
    "deflate",
    "inflate",
    "pack",
    "unpack",
    "parse_csv",
    "format_csv",
    "parse_query_string",
    "format_table",
    "sqrt", "floor", "ceil", "log", "log2", "exp", "sin", "cos", "pi",
    "mean", "median", "variance",
    "HLIB_NAMESPACE",
]

# -- encoding -----------------------------------------------------------------


def json_dumps(value, indent=None) -> str:
    """Serialize to JSON text (sorted keys for determinism)."""
    return _json.dumps(value, indent=indent, sort_keys=True)


def json_loads(text):
    """Parse JSON text (str or bytes)."""
    if isinstance(text, (bytes, bytearray)):
        text = text.decode("utf-8")
    return _json.loads(text)


def b64encode(data: bytes) -> str:
    return _base64.b64encode(bytes(data)).decode("ascii")


def b64decode(text: str) -> bytes:
    return _base64.b64decode(text)


def crc32(data: bytes) -> int:
    return _zlib.crc32(bytes(data)) & 0xFFFFFFFF


def adler32(data: bytes) -> int:
    return _zlib.adler32(bytes(data)) & 0xFFFFFFFF


def deflate(data: bytes, level: int = 6) -> bytes:
    """zlib-compress a payload (pure computation)."""
    return _zlib.compress(bytes(data), level)


def inflate(data: bytes) -> bytes:
    return _zlib.decompress(bytes(data))


def pack(fmt: str, *values) -> bytes:
    """struct.pack with the standard format mini-language."""
    return _struct.pack(fmt, *values)


def unpack(fmt: str, data: bytes) -> tuple:
    return _struct.unpack(fmt, data)


# -- text / tabular ---------------------------------------------------------------


def parse_csv(text: str, delimiter: str = ",") -> list[list[str]]:
    """Minimal CSV parsing: quoted fields, embedded delimiters."""
    rows: list[list[str]] = []
    for line in text.splitlines():
        if not line:
            continue
        fields: list[str] = []
        current: list[str] = []
        quoted = False
        index = 0
        while index < len(line):
            char = line[index]
            if quoted:
                if char == '"' and index + 1 < len(line) and line[index + 1] == '"':
                    current.append('"')
                    index += 1
                elif char == '"':
                    quoted = False
                else:
                    current.append(char)
            elif char == '"':
                quoted = True
            elif char == delimiter:
                fields.append("".join(current))
                current = []
            else:
                current.append(char)
            index += 1
        fields.append("".join(current))
        rows.append(fields)
    return rows


def format_csv(rows, delimiter: str = ",") -> str:
    """Format rows of values as CSV, quoting where needed."""
    def field(value) -> str:
        text = str(value)
        if delimiter in text or '"' in text or "\n" in text:
            return '"' + text.replace('"', '""') + '"'
        return text

    return "\n".join(delimiter.join(field(v) for v in row) for row in rows)


def parse_query_string(query: str) -> dict[str, str]:
    """Parse ``a=1&b=two`` into a dict (no URL decoding beyond %XX)."""
    result: dict[str, str] = {}
    for pair in query.lstrip("?").split("&"):
        if not pair:
            continue
        key, _sep, value = pair.partition("=")
        result[_unquote(key)] = _unquote(value)
    return result


_PERCENT = _re.compile(r"%([0-9A-Fa-f]{2})")


def _unquote(text: str) -> str:
    return _PERCENT.sub(lambda m: chr(int(m.group(1), 16)), text.replace("+", " "))


def format_table(headers, rows) -> str:
    """Align rows under headers — hlibc-style formatting helper."""
    headers = [str(h) for h in headers]
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# -- math ----------------------------------------------------------------------

sqrt = _math.sqrt
floor = _math.floor
ceil = _math.ceil
log = _math.log
log2 = _math.log2
exp = _math.exp
sin = _math.sin
cos = _math.cos
pi = _math.pi


def mean(values) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values) -> float:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def variance(values) -> float:
    values = list(values)
    if not values:
        raise ValueError("variance of empty sequence")
    centre = mean(values)
    return sum((v - centre) ** 2 for v in values) / len(values)


class _HlibModule:
    """Attribute-access façade injected into sourced functions."""

    def __init__(self, names):
        for name in names:
            setattr(self, name, globals()[name])

    def __repr__(self) -> str:
        return "<hlib (syscall-free utility library)>"


HLIB_NAMESPACE = _HlibModule([n for n in __all__ if n != "HLIB_NAMESPACE"])
