"""The dispatcher — orchestration of composition invocations (§5, §6.1).

"The dispatcher orchestrates composition invocations using separate
green threads.  It queues functions as their inputs become available
and coordinates data movement."  Each invocation runs as a tree of
simulation processes: one per node, plus one per function instance.
The dispatcher:

* tracks input/output dependencies and launches a node once every one
  of its input sets has been delivered;
* expands ``each``/``key`` edges into parallel instances
  (:mod:`repro.dispatcher.expansion`);
* prepares an isolated memory context per instance, copies inputs in,
  and enqueues a task on the compute or communication queue;
* on completion associates outputs with waiting consumers and frees a
  producer's contexts "when all data-dependent functions have consumed
  its output";
* retries transient engine failures (pure compute functions are
  idempotent, §6.1) and surfaces deterministic user failures to the
  client.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..composition.graph import (
    Composition,
    CompositionNode,
    Distribution,
)
from ..composition.registry import Registry
from ..data.context import MemoryContext
from ..data.items import DataSet
from ..engines.group import EngineGroup
from ..engines.task import COMMUNICATION, COMPUTE, Task
from ..errors import InvocationError
from ..sim.core import Environment
from .expansion import expand_instances, merge_instance_outputs
from .memory import MemoryTracker

__all__ = ["Dispatcher", "InvocationResult", "NodeFailure"]

# Virtual reservation for communication-function contexts (responses
# can be large; reservation is virtual, commitment follows actual data).
_COMM_CONTEXT_CAPACITY = 1 << 30


@dataclass(frozen=True)
class NodeFailure:
    """Failure marker propagated through deliveries instead of data."""

    node_name: str
    error: BaseException


@dataclass
class InvocationResult:
    """Outputs (or failure) of one composition invocation."""

    invocation_id: int
    outputs: dict[str, DataSet] = field(default_factory=dict)
    error: Optional[BaseException] = None
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at

    def output(self, name: str) -> DataSet:
        if self.error is not None:
            raise InvocationError(f"invocation failed: {self.error}") from self.error
        return self.outputs[name]


class Dispatcher:
    """Orchestrates invocations over the worker's engine groups."""

    def __init__(
        self,
        env: Environment,
        registry: Registry,
        compute_group: EngineGroup,
        comm_group: EngineGroup,
        memory: Optional[MemoryTracker] = None,
        cache_mode: str = "warm",
        cache_rng=None,
        cold_load_fraction: float = 0.0,
        max_retries: int = 2,
        default_timeout: Optional[float] = None,
        data_passing: str = "copy",
    ):
        self.env = env
        self.registry = registry
        self.compute_group = compute_group
        self.comm_group = comm_group
        self.memory = memory or MemoryTracker(env)
        if cache_mode not in ("warm", "always", "never", "fraction"):
            raise ValueError(f"unknown cache_mode {cache_mode!r}")
        if data_passing not in ("copy", "remap"):
            raise ValueError(f"unknown data_passing mode {data_passing!r}")
        # §6.1: "To move data between contexts, Dandelion currently
        # copies data. ... Different backends could avoid the copy by
        # remapping memory".  "remap" models that variant: inputs are
        # not duplicated into the consumer's context (no extra committed
        # pages, only the fixed page-table cost at transfer time).
        self.data_passing = data_passing
        self.cache_mode = cache_mode
        self.cache_rng = cache_rng
        self.cold_load_fraction = cold_load_fraction
        self.max_retries = max_retries
        self.default_timeout = default_timeout
        self._warm_binaries: set[str] = set()
        self._invocation_ids = itertools.count()
        self.invocations_started = 0
        self.invocations_completed = 0
        self.invocations_failed = 0

    # -- public API ---------------------------------------------------------

    def invoke(self, composition_name: str, inputs: dict[str, DataSet]):
        """Start an invocation; returns a process yielding InvocationResult."""
        composition = self.registry.composition(composition_name)
        return self.env.process(self._invoke(composition, inputs))

    def _invoke(self, composition: Composition, inputs: dict[str, DataSet]):
        invocation_id = next(self._invocation_ids)
        self.invocations_started += 1
        result = InvocationResult(invocation_id=invocation_id, started_at=self.env.now)
        try:
            outputs = yield from self._run_composition(composition, inputs, invocation_id)
        except InvocationError as exc:
            result.error = exc
            result.finished_at = self.env.now
            self.invocations_failed += 1
            return result
        result.outputs = outputs
        result.finished_at = self.env.now
        self.invocations_completed += 1
        return result

    # -- composition execution ------------------------------------------------

    def _run_composition(self, composition: Composition, inputs: dict[str, DataSet], invocation_id: int):
        """Generator running one composition; returns output-name -> DataSet."""
        expected = {binding.external for binding in composition.inputs}
        provided = set(inputs)
        if provided != expected:
            raise InvocationError(
                f"composition {composition.name!r} expects inputs {sorted(expected)}, "
                f"got {sorted(provided)}"
            )

        # One delivery event per (node, input set); values are
        # (Distribution, DataSet-or-NodeFailure).
        deliveries: dict[tuple[str, str], object] = {
            (node.name, set_name): self.env.event()
            for node in composition.nodes.values()
            for set_name in node.input_sets
        }
        # "Consumed" events let producers free contexts once every
        # data-dependent function has picked up its inputs.
        consumed: dict[tuple[str, str], object] = {
            key: self.env.event() for key in deliveries
        }
        output_events: dict[str, object] = {
            binding.external: self.env.event() for binding in composition.outputs
        }

        state = _CompositionRun(
            composition=composition,
            deliveries=deliveries,
            consumed=consumed,
            output_events=output_events,
            invocation_id=invocation_id,
        )

        for node in composition.nodes.values():
            self.env.process(self._run_node(state, node))

        # Feed the composition-level inputs.
        for binding in composition.inputs:
            data = inputs[binding.external]
            deliveries[(binding.node, binding.node_set)].succeed(
                (Distribution.ALL, DataSet(binding.node_set, data.items))
            )

        gathered = yield self.env.all_of(list(output_events.values()))
        outputs: dict[str, DataSet] = {}
        failure: Optional[NodeFailure] = None
        for binding in composition.outputs:
            value = output_events[binding.external].value
            if isinstance(value, NodeFailure):
                failure = value
            else:
                outputs[binding.external] = DataSet(binding.external, value.items)
        if failure is not None:
            raise InvocationError(
                f"node {failure.node_name!r} failed: {failure.error}"
            )
        return outputs

    def _run_node(self, state: "_CompositionRun", node):
        """Process executing one node of a composition run."""
        composition = state.composition
        delivery_events = [
            state.deliveries[(node.name, set_name)] for set_name in node.input_sets
        ]
        yield self.env.all_of(delivery_events)
        delivered = [
            (set_name, *state.deliveries[(node.name, set_name)].value)
            for set_name in node.input_sets
        ]

        upstream_failure = next(
            (data for _n, _d, data in delivered if isinstance(data, NodeFailure)), None
        )
        if upstream_failure is not None:
            self._mark_consumed(state, node)
            self._propagate(state, node, failure=upstream_failure)
            return

        try:
            plans = expand_instances(node.name, delivered)
        except InvocationError as exc:
            self._mark_consumed(state, node)
            self._propagate(state, node, failure=NodeFailure(node.name, exc))
            return

        instance_processes = [
            self.env.process(self._run_instance(state, node, plan)) for plan in plans
        ]
        # Inputs are now copied into instance contexts; upstream
        # producers may free theirs.
        self._mark_consumed(state, node)

        gathered = yield self.env.all_of(instance_processes)
        per_instance = [process.value for process in instance_processes]
        failure = next(
            (value for value in per_instance if isinstance(value, NodeFailure)), None
        )
        if failure is not None:
            self._propagate(state, node, failure=failure)
            return
        merged = merge_instance_outputs(list(node.output_sets), per_instance)
        self._propagate(state, node, outputs=merged)

    def _mark_consumed(self, state: "_CompositionRun", node) -> None:
        for set_name in node.input_sets:
            event = state.consumed[(node.name, set_name)]
            if not event.triggered:
                event.succeed()

    def _propagate(self, state, node, outputs=None, failure=None) -> None:
        """Deliver a node's outputs (or failure) downstream and to bindings."""
        composition = state.composition
        for edge in composition.outgoing_edges(node.name):
            payload = failure if failure is not None else DataSet(
                edge.target_set, outputs[edge.source_set].items
            )
            state.deliveries[(edge.target, edge.target_set)].succeed(
                (edge.distribution, payload)
            )
        for binding in composition.outputs:
            if binding.node == node.name:
                value = failure if failure is not None else outputs[binding.node_set]
                state.output_events[binding.external].succeed(value)

    # -- instance execution ---------------------------------------------------

    def _run_instance(self, state, node, plan):
        """Process executing one instance; returns outputs or NodeFailure."""
        if node.kind == "composition":
            result = yield from self._run_nested(state, node, plan)
            return result
        if node.kind == "communication":
            result = yield from self._run_task(
                state, node, plan, kind=COMMUNICATION, binary=None
            )
            return result
        binary = self.registry.function(node.function)
        result = yield from self._run_task(state, node, plan, kind=COMPUTE, binary=binary)
        return result

    def _run_nested(self, state, node: CompositionNode, plan):
        inputs = {
            data_set.ident: data_set for data_set in plan.input_sets
        }
        try:
            outputs = yield from self._run_composition(
                node.composition, inputs, state.invocation_id
            )
        except InvocationError as exc:
            return NodeFailure(node.name, exc)
        return [DataSet(name, outputs[name].items) for name in node.output_sets]

    def _run_task(self, state, node, plan, kind: str, binary):
        """Run one engine task with context lifecycle and retries."""
        if kind == COMPUTE:
            capacity = binary.memory_limit
            output_names = list(node.output_sets)
        else:
            capacity = _COMM_CONTEXT_CAPACITY
            output_names = list(node.output_sets)
        context = MemoryContext(
            capacity, ident=f"inv{state.invocation_id}/{node.name}[{plan.index}]"
        )
        zero_copy = self.data_passing == "remap"
        if not zero_copy:
            # Copy mode: inputs are duplicated into the new context.
            context.store_sets(plan.input_sets)
        self.memory.observe(context)

        attempts = 0
        while True:
            task = Task(
                kind=kind,
                input_sets=plan.input_sets,
                output_set_names=output_names,
                completion=self.env.event(),
                context=context,
                binary=binary,
                cached=self._binary_cached(binary) if binary is not None else False,
                zero_copy=zero_copy,
                protocol=getattr(node, "protocol", "http"),
                timeout=self.default_timeout,
                invocation_id=state.invocation_id,
                node_name=node.name,
                instance_index=plan.index,
            )
            group = self.compute_group if kind == COMPUTE else self.comm_group
            group.submit(task)
            outcome = yield task.completion
            if outcome.success:
                break
            if outcome.transient and attempts < self.max_retries:
                attempts += 1
                continue
            self._release_context(context)
            return NodeFailure(node.name, outcome.error)

        # Outputs live in the instance's context until consumers have
        # copied them out.
        try:
            context.store_sets(outcome.outputs, offset=context.committed)
        except Exception:
            # Outputs exceeding the reservation only affect accounting
            # granularity, never the data itself.
            pass
        self.memory.observe(context)
        self.env.process(self._free_after_consumption(state, node, context))
        return outcome.outputs

    def _free_after_consumption(self, state, node, context: MemoryContext):
        composition = state.composition
        waits = [
            state.consumed[(edge.target, edge.target_set)]
            for edge in composition.outgoing_edges(node.name)
        ]
        for binding in composition.outputs:
            if binding.node == node.name:
                waits.append(state.output_events[binding.external])
        if waits:
            yield self.env.all_of(waits)
        self._release_context(context)

    def _release_context(self, context: MemoryContext) -> None:
        context.free()
        self.memory.release(context)

    # -- binary cache model -----------------------------------------------------

    def _binary_cached(self, binary) -> bool:
        """Whether this load is served from the in-RAM binary cache.

        ``warm``: first invocation of a function loads from disk, later
        ones hit the cache (optionally, ``cold_load_fraction`` of
        requests bypass it, as in Fig 6's "3% of requests load from
        disk").  ``always``/``never`` force one behaviour; ``fraction``
        uses ``cold_load_fraction`` alone.
        """
        if self.cache_mode == "always":
            return True
        if self.cache_mode == "never":
            return False
        if self.cache_mode == "fraction":
            if self.cache_rng is None:
                raise ValueError("cache_mode='fraction' requires cache_rng")
            return not self.cache_rng.bernoulli(self.cold_load_fraction)
        # warm
        if binary.name not in self._warm_binaries:
            self._warm_binaries.add(binary.name)
            return False
        if self.cold_load_fraction > 0 and self.cache_rng is not None:
            return not self.cache_rng.bernoulli(self.cold_load_fraction)
        return True


@dataclass
class _CompositionRun:
    """Shared state of one composition run."""

    composition: Composition
    deliveries: dict
    consumed: dict
    output_events: dict
    invocation_id: int
