"""The dispatcher — orchestration of composition invocations (§5, §6.1).

"The dispatcher orchestrates composition invocations using separate
green threads.  It queues functions as their inputs become available
and coordinates data movement."  Each invocation runs as a tree of
simulation processes: one per node, plus one per function instance.
The dispatcher:

* tracks input/output dependencies and launches a node once every one
  of its input sets has been delivered;
* expands ``each``/``key`` edges into parallel instances
  (:mod:`repro.dispatcher.expansion`);
* prepares an isolated memory context per instance, copies inputs in,
  and enqueues a task on the compute or communication queue;
* on completion associates outputs with waiting consumers and frees a
  producer's contexts "when all data-dependent functions have consumed
  its output";
* retries transient engine failures (pure compute functions are
  idempotent, §6.1) and surfaces deterministic user failures to the
  client.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..composition.graph import (
    Composition,
    CompositionNode,
    Distribution,
)
from ..composition.registry import Registry
from ..data.context import ContextError, MemoryContext
from ..data.items import DataSet
from ..engines.group import EngineGroup
from ..engines.task import COMPUTE, Task, TaskOutcome
from ..errors import DeadlineExceeded, InvocationError
from ..sim.core import Environment
from .expansion import expand_instances, merge_instance_outputs
from .memory import MemoryTracker

__all__ = ["Dispatcher", "InvocationResult", "NodeFailure"]

# Virtual reservation for communication-function contexts (responses
# can be large; reservation is virtual, commitment follows actual data).
_COMM_CONTEXT_CAPACITY = 1 << 30

# Retry schedule for transient engine failures (§6.1): exponential
# backoff starting at 1 ms, doubling per attempt, with up to 10%
# seeded jitter so synchronized failures don't re-collide.  Retrying
# through ``env.timeout`` (instead of re-submitting in the same
# simulated instant) gives a crashed engine or a congested queue
# virtual time to recover.
_RETRY_BACKOFF_BASE_SECONDS = 1e-3
_RETRY_BACKOFF_FACTOR = 2.0
_RETRY_JITTER_FRACTION = 0.1


@dataclass(frozen=True)
class NodeFailure:
    """Failure marker propagated through deliveries instead of data."""

    node_name: str
    error: BaseException


class _NodeStep:
    """Static per-node execution facts, resolved once per composition.

    Node structure never changes after registration, so the dispatcher
    compiles each node's hot-path constants — resolved binary, context
    capacity, set-name order, outgoing edges, target engine group —
    instead of re-deriving them on every invocation.
    """

    __slots__ = (
        "node",
        "kind",
        "binary",
        "capacity",
        "group",
        "input_names",
        "output_names",
        "protocol",
        "bound",
        "edges_out",
    )

    def __init__(self, dispatcher: "Dispatcher", composition, node, bound: bool):
        self.node = node
        self.kind = node.kind
        if node.kind == COMPUTE:
            self.binary = dispatcher.registry.function(node.function)
            self.capacity = self.binary.memory_limit
            self.group = dispatcher.compute_group
        else:
            self.binary = None
            self.capacity = _COMM_CONTEXT_CAPACITY
            self.group = dispatcher.comm_group
        self.input_names = list(node.input_sets)
        self.output_names = list(node.output_sets)
        self.protocol = getattr(node, "protocol", "http")
        self.bound = bound
        self.edges_out = [
            (edge.target, edge.target_set, edge.distribution, edge.source_set)
            for edge in composition.outgoing_edges(node.name)
        ]


@dataclass
class InvocationResult:
    """Outputs (or failure) of one composition invocation."""

    invocation_id: int
    outputs: dict[str, DataSet] = field(default_factory=dict)
    error: Optional[BaseException] = None
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at

    def output(self, name: str) -> DataSet:
        if self.error is not None:
            raise InvocationError(f"invocation failed: {self.error}") from self.error
        return self.outputs[name]


class Dispatcher:
    """Orchestrates invocations over the worker's engine groups."""

    __slots__ = (
        "env",
        "registry",
        "compute_group",
        "comm_group",
        "memory",
        "data_passing",
        "cache_mode",
        "cache_rng",
        "cold_load_fraction",
        "max_retries",
        "default_timeout",
        "retry_rng",
        "retry_backoff_base",
        "retries_performed",
        "deadline_expirations",
        "static_admission",
        "admission_rejections",
        "_cost_summaries",
        "_warm_binaries",
        "_serial_cache",
        "_invocation_ids",
        "invocations_started",
        "invocations_completed",
        "invocations_failed",
    )

    def __init__(
        self,
        env: Environment,
        registry: Registry,
        compute_group: EngineGroup,
        comm_group: EngineGroup,
        memory: Optional[MemoryTracker] = None,
        cache_mode: str = "warm",
        cache_rng=None,
        cold_load_fraction: float = 0.0,
        max_retries: int = 2,
        default_timeout: Optional[float] = None,
        data_passing: str = "copy",
        retry_rng=None,
        retry_backoff_base: float = _RETRY_BACKOFF_BASE_SECONDS,
        static_admission: bool = False,
    ):
        self.env = env
        self.registry = registry
        self.compute_group = compute_group
        self.comm_group = comm_group
        self.memory = memory or MemoryTracker(env)
        if cache_mode not in ("warm", "always", "never", "fraction"):
            raise ValueError(f"unknown cache_mode {cache_mode!r}")
        if data_passing not in ("copy", "remap"):
            raise ValueError(f"unknown data_passing mode {data_passing!r}")
        # §6.1: "To move data between contexts, Dandelion currently
        # copies data. ... Different backends could avoid the copy by
        # remapping memory".  "remap" models that variant: inputs are
        # not duplicated into the consumer's context (no extra committed
        # pages, only the fixed page-table cost at transfer time).
        self.data_passing = data_passing
        self.cache_mode = cache_mode
        self.cache_rng = cache_rng
        self.cold_load_fraction = cold_load_fraction
        self.max_retries = max_retries
        self.default_timeout = default_timeout
        self.retry_rng = retry_rng
        self.retry_backoff_base = retry_backoff_base
        self.retries_performed = 0
        self.deadline_expirations = 0
        # Static admission (repro.analysis.dataflow): when enabled,
        # invocations of a composition whose declared deadline is
        # statically unreachable are rejected before any scheduling or
        # memory-context work happens — the cost summary is a lower
        # bound (unbounded parallelism), so a failing path can *never*
        # meet the deadline.
        self.static_admission = static_admission
        self.admission_rejections = 0
        self._cost_summaries: dict[int, object] = {}
        self._warm_binaries: set[str] = set()
        # Composition id -> (composition, serial node order or None);
        # see _serial_nodes.
        self._serial_cache: dict[int, tuple] = {}
        self._invocation_ids = itertools.count()
        self.invocations_started = 0
        self.invocations_completed = 0
        self.invocations_failed = 0

    # -- public API ---------------------------------------------------------

    @property
    def warm_binaries(self):
        """Names of binaries currently in this node's in-RAM cache.

        A live, read-only view (not a copy — routing policies probe it
        on every decision): locality signal for
        :class:`~repro.sched.routing.LocalityAware`.  Membership-test
        only; callers must not mutate it or rely on iteration order.
        """
        return self._warm_binaries

    def is_binary_warm(self, name: str) -> bool:
        """O(1) membership probe into the in-RAM binary cache."""
        return name in self._warm_binaries

    def cost_summary(self, composition_name: str):
        """Static cost envelope of a registered composition (cached).

        Computed lazily by :func:`repro.analysis.dataflow.cost_summary`
        on first request and memoized per composition object.
        """
        composition = self.registry.composition(composition_name)
        key = id(composition)
        summary = self._cost_summaries.get(key)
        if summary is None:
            from ..analysis.dataflow import cost_summary as analyze_cost

            summary = analyze_cost(composition, self.registry)
            self._cost_summaries[key] = summary
        return summary

    def invoke(self, composition_name: str, inputs: dict[str, DataSet]):
        """Start an invocation; returns a process yielding InvocationResult."""
        composition = self.registry.composition(composition_name)
        return self.env.process(self._invoke(composition, inputs))

    def _invoke(self, composition: Composition, inputs: dict[str, DataSet]):
        invocation_id = next(self._invocation_ids)
        self.invocations_started += 1
        result = InvocationResult(invocation_id=invocation_id, started_at=self.env.now)
        if self.static_admission and composition.deadline_seconds is not None:
            summary = self.cost_summary(composition.name)
            if summary.deadline_feasible is False:
                self.admission_rejections += 1
                self.invocations_failed += 1
                result.error = InvocationError(
                    f"composition {composition.name!r} statically rejected: "
                    f"critical path {summary.critical_path_seconds:.6g}s "
                    f"cannot meet the {composition.deadline_seconds}s deadline"
                )
                result.finished_at = self.env.now
                return result
        try:
            outputs = yield from self._run_composition(composition, inputs, invocation_id)
        except InvocationError as exc:
            result.error = exc
            result.finished_at = self.env.now
            self.invocations_failed += 1
            return result
        result.outputs = outputs
        result.finished_at = self.env.now
        self.invocations_completed += 1
        return result

    # -- composition execution ------------------------------------------------

    def _run_composition(self, composition: Composition, inputs: dict[str, DataSet], invocation_id: int):
        """Generator running one composition; returns output-name -> DataSet."""
        expected = {binding.external for binding in composition.inputs}
        provided = set(inputs)
        if provided != expected:
            raise InvocationError(
                f"composition {composition.name!r} expects inputs {sorted(expected)}, "
                f"got {sorted(provided)}"
            )

        chain, steps = self._compile(composition)
        if chain is not None:
            # Chain-shaped composition (every node's sole successor is
            # the next node): the event-driven schedule is provably
            # sequential, so run the nodes inline without the
            # delivery/consumed/output event machinery.
            outputs = yield from self._run_serial(composition, inputs, invocation_id, chain)
            return outputs

        # One delivery event per (node, input set); values are
        # (Distribution, DataSet-or-NodeFailure).
        deliveries: dict[tuple[str, str], object] = {
            (node.name, set_name): self.env.event()
            for node in composition.nodes.values()
            for set_name in node.input_sets
        }
        # "Consumed" events let producers free contexts once every
        # data-dependent function has picked up its inputs.
        consumed: dict[tuple[str, str], object] = {
            key: self.env.event() for key in deliveries
        }
        output_events: dict[str, object] = {
            binding.external: self.env.event() for binding in composition.outputs
        }

        state = _CompositionRun(
            composition=composition,
            deliveries=deliveries,
            consumed=consumed,
            output_events=output_events,
            invocation_id=invocation_id,
            steps=steps,
        )

        for node in composition.nodes.values():
            self.env.process(self._run_node(state, node))

        # Feed the composition-level inputs.
        for binding in composition.inputs:
            data = inputs[binding.external]
            deliveries[(binding.node, binding.node_set)].succeed(
                (Distribution.ALL, DataSet.renamed(data, binding.node_set))
            )

        gathered = yield self.env.all_of(list(output_events.values()))
        outputs: dict[str, DataSet] = {}
        failure: Optional[NodeFailure] = None
        for binding in composition.outputs:
            value = output_events[binding.external].value
            if isinstance(value, NodeFailure):
                failure = value
            else:
                outputs[binding.external] = DataSet.renamed(value, binding.external)
        if failure is not None:
            raise InvocationError(
                f"node {failure.node_name!r} failed: {failure.error}"
            )
        return outputs

    # -- serial (chain) execution ---------------------------------------------

    def _compile(self, composition: Composition):
        """Per-composition execution plan: ``(chain_steps, steps_by_name)``.

        Every node gets a :class:`_NodeStep` with its static execution
        facts resolved once — function binary, context capacity, input/
        output set order, outgoing edges, engine group — so the per-
        invocation hot path does no registry lookups or edge scans.

        ``chain_steps`` is the topological step order when the
        composition is a *chain* (every node's outgoing edges all target
        the next node and every node's incoming edges all come from the
        previous one), else ``None``.  Under the event-driven schedule a
        chain runs strictly sequentially (node ``k+1`` cannot start
        before node ``k`` finishes), so the serial runner below produces
        identical virtual-time behaviour with none of the per-node event
        plumbing.  The plan is structural, so it is cached per
        composition object (registrations are immutable: the registry
        rejects re-registration under an existing name).
        """
        cached = self._serial_cache.get(id(composition))
        if cached is not None and cached[0] is composition:
            return cached[1], cached[2]
        bound_nodes = {binding.node for binding in composition.outputs}
        steps_by_name = {
            name: _NodeStep(self, composition, node, name in bound_nodes)
            for name, node in composition.nodes.items()
        }
        order = composition.topological_order
        chain = [steps_by_name[name] for name in order]
        for index in range(len(order) - 1):
            current, successor = order[index], order[index + 1]
            outgoing = composition.outgoing_edges(current)
            if not outgoing or any(edge.target != successor for edge in outgoing):
                chain = None
                break
            if any(
                edge.source != current
                for edge in composition.incoming_edges(successor)
            ):
                chain = None
                break
        self._serial_cache[id(composition)] = (composition, chain, steps_by_name)
        return chain, steps_by_name

    def _run_serial(self, composition, inputs, invocation_id, chain):
        """Run a chain composition node by node in this process.

        Timing-equivalent to the general event-driven path: instances
        run through the same ``_run_task_core``; a producer's contexts
        are released via a zero-delay timer scheduled when its
        successor launches (matching the consumed-event hop of the
        general path), and contexts of nodes with output bindings are
        held until the composition completes.
        """
        env = self.env
        delivered: dict[str, dict] = {name: {} for name in composition.nodes}
        for binding in composition.inputs:
            delivered[binding.node][binding.node_set] = (
                Distribution.ALL,
                DataSet.renamed(inputs[binding.external], binding.node_set),
            )
        node_outputs: dict[str, dict] = {}
        held: list[MemoryContext] = []     # freed when the composition completes
        pending: list[MemoryContext] = []  # previous node's, freed at successor launch
        failure: Optional[NodeFailure] = None
        for step in chain:
            node_name = step.node.name
            node_deliveries = delivered[node_name]
            triples = [
                (set_name, *node_deliveries[set_name])
                for set_name in step.input_names
            ]
            try:
                plans = expand_instances(node_name, triples)
            except InvocationError as exc:
                failure = NodeFailure(node_name, exc)
                break
            if len(plans) == 1:
                if pending:
                    self._schedule_release(pending)
                    pending = []
                results = [
                    (yield from self._run_instance_serial(step, plans[0], invocation_id))
                ]
            else:
                processes = [
                    env.process(self._run_instance_serial(step, plan, invocation_id))
                    for plan in plans
                ]
                if pending:
                    self._schedule_release(pending)
                    pending = []
                yield env.all_of(processes)
                results = [process.value for process in processes]
            failure = next(
                (value for value, _ctx in results if isinstance(value, NodeFailure)),
                None,
            )
            if failure is not None:
                # Failed instances released their context already;
                # successful siblings' contexts are consumed by the
                # failure propagation, as in the general path.
                pending.extend(ctx for _v, ctx in results if ctx is not None)
                break
            merged = merge_instance_outputs(
                step.output_names, [value for value, _ctx in results]
            )
            node_outputs[node_name] = merged
            pending = [ctx for _v, ctx in results if ctx is not None]
            if step.bound:
                # Output bindings are only delivered when the whole
                # composition finishes, so these contexts stay live.
                held.extend(pending)
                pending = []
            for target, target_set, distribution, source_set in step.edges_out:
                delivered[target][target_set] = (
                    distribution,
                    DataSet.renamed(merged[source_set], target_set),
                )
        if failure is not None:
            if pending:
                held.extend(pending)
            if held:
                self._schedule_release(held)
            raise InvocationError(
                f"node {failure.node_name!r} failed: {failure.error}"
            )
        held.extend(pending)
        if held:
            self._schedule_release(held)
        outputs: dict[str, DataSet] = {}
        for binding in composition.outputs:
            outputs[binding.external] = DataSet.renamed(
                node_outputs[binding.node][binding.node_set], binding.external
            )
        return outputs

    def _run_instance_serial(self, step, plan, invocation_id):
        """Like :meth:`_run_instance` but returns ``(value, context)``
        so the serial runner controls context freeing."""
        if step.kind == "composition":
            result = yield from self._run_nested(step.node, plan, invocation_id)
            return result, None
        result = yield from self._run_task_core(invocation_id, step, plan)
        return result

    def _schedule_release(self, contexts) -> None:
        """Release ``contexts`` one event-heap hop from now.

        Mirrors the general path, where a producer's free condition
        fires in a heap step at the same virtual time as consumption.
        """
        contexts = list(contexts)

        def _release(_event, release=self._release_context, contexts=contexts):
            for context in contexts:
                release(context)

        self.env.timeout(0.0).callbacks.append(_release)

    def _run_node(self, state: "_CompositionRun", node):
        """Process executing one node of a composition run."""
        composition = state.composition
        delivery_events = [
            state.deliveries[(node.name, set_name)] for set_name in node.input_sets
        ]
        yield self.env.all_of(delivery_events)
        delivered = [
            (set_name, *state.deliveries[(node.name, set_name)].value)
            for set_name in node.input_sets
        ]

        upstream_failure = next(
            (data for _n, _d, data in delivered if isinstance(data, NodeFailure)), None
        )
        if upstream_failure is not None:
            self._mark_consumed(state, node)
            self._propagate(state, node, failure=upstream_failure)
            return

        try:
            plans = expand_instances(node.name, delivered)
        except InvocationError as exc:
            self._mark_consumed(state, node)
            self._propagate(state, node, failure=NodeFailure(node.name, exc))
            return

        if len(plans) == 1:
            # Fast path: a single instance needs no fan-out bookkeeping,
            # so run it inline in this process instead of spawning one.
            self._mark_consumed(state, node)
            value = yield from self._run_instance(state, node, plans[0])
            per_instance = [value]
        else:
            instance_processes = [
                self.env.process(self._run_instance(state, node, plan)) for plan in plans
            ]
            # Inputs are now copied into instance contexts; upstream
            # producers may free theirs.
            self._mark_consumed(state, node)

            gathered = yield self.env.all_of(instance_processes)
            per_instance = [process.value for process in instance_processes]
        failure = next(
            (value for value in per_instance if isinstance(value, NodeFailure)), None
        )
        if failure is not None:
            self._propagate(state, node, failure=failure)
            return
        merged = merge_instance_outputs(list(node.output_sets), per_instance)
        self._propagate(state, node, outputs=merged)

    def _mark_consumed(self, state: "_CompositionRun", node) -> None:
        for set_name in node.input_sets:
            event = state.consumed[(node.name, set_name)]
            if not event.triggered:
                event.succeed()

    def _propagate(self, state, node, outputs=None, failure=None) -> None:
        """Deliver a node's outputs (or failure) downstream and to bindings."""
        composition = state.composition
        for edge in composition.outgoing_edges(node.name):
            payload = failure if failure is not None else DataSet.renamed(
                outputs[edge.source_set], edge.target_set
            )
            state.deliveries[(edge.target, edge.target_set)].succeed(
                (edge.distribution, payload)
            )
        for binding in composition.outputs:
            if binding.node == node.name:
                value = failure if failure is not None else outputs[binding.node_set]
                state.output_events[binding.external].succeed(value)

    # -- instance execution ---------------------------------------------------

    def _run_instance(self, state, node, plan):
        """Process executing one instance; returns outputs or NodeFailure."""
        if node.kind == "composition":
            result = yield from self._run_nested(node, plan, state.invocation_id)
            return result
        result = yield from self._run_task(state, node, plan)
        return result

    def _run_nested(self, node: CompositionNode, plan, invocation_id):
        inputs = {
            data_set.ident: data_set for data_set in plan.input_sets
        }
        try:
            outputs = yield from self._run_composition(
                node.composition, inputs, invocation_id
            )
        except InvocationError as exc:
            return NodeFailure(node.name, exc)
        return [DataSet.renamed(outputs[name], name) for name in node.output_sets]

    def _run_task(self, state, node, plan):
        """Run one engine task (general path: freeing via consumed events)."""
        value, context = yield from self._run_task_core(
            state.invocation_id, state.steps[node.name], plan
        )
        if context is not None:
            self._free_after_consumption(state, node, context)
        return value

    def _run_task_core(self, invocation_id, step, plan):
        """Run one engine task with context lifecycle and retries.

        Returns ``(outputs_or_failure, context)``; the context is
        ``None`` when the task failed (it is already released).  The
        caller arranges when the returned context is freed.
        """
        node_name = step.node.name
        binary = step.binary
        context = MemoryContext(
            step.capacity, ident=f"inv{invocation_id}/{node_name}[{plan.index}]"
        )
        zero_copy = self.data_passing == "remap"
        if not zero_copy:
            # Copy mode: inputs are duplicated into the new context.
            context.store_sets(plan.input_sets)
        self.memory.observe(context)

        group = step.group
        task = Task(
            kind=step.kind,
            input_sets=plan.input_sets,
            output_set_names=step.output_names,
            completion=self.env.event(),
            context=context,
            binary=binary,
            cached=self._binary_cached(binary) if binary is not None else False,
            zero_copy=zero_copy,
            protocol=step.protocol,
            timeout=self.default_timeout,
            invocation_id=invocation_id,
            node_name=node_name,
            instance_index=plan.index,
        )
        # The deadline is a budget for the whole node execution —
        # attempts *and* the backoff sleeps between them — anchored at
        # first submission.  (Per-attempt deadlines let a retry chain
        # sleep past the point the caller stopped waiting.)
        deadline_at = (
            self.env.now + task.timeout if task.timeout is not None else None
        )
        attempts = 0
        while True:
            group.submit(task)
            outcome = yield from self._await_task(task, deadline_at)
            if outcome.success:
                break
            if outcome.transient and attempts < self.max_retries:
                attempts += 1
                self.retries_performed += 1
                delay = self._backoff_seconds(attempts)
                if deadline_at is not None and delay >= deadline_at - self.env.now:
                    # The backoff sleep alone would overrun the
                    # deadline; surface DeadlineExceeded now instead of
                    # sleeping past the point the caller gave up.
                    self.deadline_expirations += 1
                    self._release_context(context)
                    return (
                        NodeFailure(
                            node_name,
                            DeadlineExceeded(
                                f"node {node_name!r} exhausted its "
                                f"{task.timeout}s deadline backing off for "
                                f"retry {attempts}"
                            ),
                        ),
                        None,
                    )
                # Back off through virtual time before re-submitting —
                # an immediate resubmit would hit the same crashed
                # engine state in the same simulated instant.
                yield self.env.timeout(delay)
                # Retry the same task with fresh per-attempt state: a
                # new completion event and a re-drawn cache outcome
                # (identical rng stream to rebuilding the task).
                task.completion = self.env.event()
                if binary is not None:
                    task.cached = self._binary_cached(binary)
                continue
            self._release_context(context)
            return NodeFailure(node_name, outcome.error), None

        # Outputs live in the instance's context until consumers have
        # copied them out.
        try:
            context.store_sets(outcome.outputs, offset=context.committed)
        except ContextError:
            # Outputs exceeding the reservation only affect accounting
            # granularity, never the data itself.  Anything other than
            # a capacity/encoding ContextError is a programming error
            # and must propagate.
            pass
        self.memory.observe(context)
        return outcome.outputs, context

    def _await_task(self, task: Task, deadline_at=None):
        """Wait on a task's completion, bounded by its deadline (§6.1).

        Without a timeout this is a bare wait — the exact event stream
        the fast path has always had.  With one, the wait races the
        completion against the *remaining* budget until ``deadline_at``
        (anchored at first submission, so retries never extend it); a
        missed deadline yields a non-retryable
        :class:`DeadlineExceeded` outcome.  The engine may still finish
        the task later in virtual time, but its completion then fires
        with no waiters and the result is discarded.
        """
        if task.timeout is None:
            outcome = yield task.completion
            return outcome
        remaining = (
            task.timeout if deadline_at is None else deadline_at - self.env.now
        )
        if remaining <= 0:
            self.deadline_expirations += 1
            return TaskOutcome(
                success=False,
                error=DeadlineExceeded(
                    f"node {task.node_name!r} missed its {task.timeout}s deadline"
                ),
                transient=False,
            )
        deadline = self.env.timeout(remaining)
        yield self.env.any_of([task.completion, deadline])
        if task.completion.processed:
            return task.completion.value
        self.deadline_expirations += 1
        return TaskOutcome(
            success=False,
            error=DeadlineExceeded(
                f"node {task.node_name!r} missed its {task.timeout}s deadline"
            ),
            transient=False,
        )

    def _backoff_seconds(self, attempt: int) -> float:
        """Exponential backoff with deterministic seeded jitter.

        ``attempt`` is 1-based.  The jitter draw only happens on actual
        retries, so fault-free runs never touch the rng stream.
        """
        delay = self.retry_backoff_base * _RETRY_BACKOFF_FACTOR ** (attempt - 1)
        if self.retry_rng is not None:
            delay *= 1.0 + _RETRY_JITTER_FRACTION * self.retry_rng.uniform()
        return delay

    def _free_after_consumption(self, state, node, context: MemoryContext) -> None:
        """Arrange for ``context`` to be freed once consumers are done.

        Registered as a callback on the consumed/output events rather
        than as a generator process: per instance this saves one
        process object plus its initialize/resume event churn.
        """
        composition = state.composition
        waits = [
            state.consumed[(edge.target, edge.target_set)]
            for edge in composition.outgoing_edges(node.name)
        ]
        for binding in composition.outputs:
            if binding.node == node.name:
                waits.append(state.output_events[binding.external])
        if not waits:
            self._release_context(context)
            return
        self.env.all_of(waits).callbacks.append(
            lambda _event: self._release_context(context)
        )

    def _release_context(self, context: MemoryContext) -> None:
        context.free()
        self.memory.release(context)

    # -- binary cache model -----------------------------------------------------

    def _binary_cached(self, binary) -> bool:
        """Whether this load is served from the in-RAM binary cache.

        ``warm``: first invocation of a function loads from disk, later
        ones hit the cache (optionally, ``cold_load_fraction`` of
        requests bypass it, as in Fig 6's "3% of requests load from
        disk").  ``always``/``never`` force one behaviour; ``fraction``
        uses ``cold_load_fraction`` alone.
        """
        if self.cache_mode == "always":
            return True
        if self.cache_mode == "never":
            return False
        if self.cache_mode == "fraction":
            if self.cache_rng is None:
                raise ValueError("cache_mode='fraction' requires cache_rng")
            return not self.cache_rng.bernoulli(self.cold_load_fraction)
        # warm
        if binary.name not in self._warm_binaries:
            self._warm_binaries.add(binary.name)
            return False
        if self.cold_load_fraction > 0 and self.cache_rng is not None:
            return not self.cache_rng.bernoulli(self.cold_load_fraction)
        return True


@dataclass
class _CompositionRun:
    """Shared state of one composition run."""

    composition: Composition
    deliveries: dict
    consumed: dict
    output_events: dict
    invocation_id: int
    steps: dict
