"""Instance expansion — turning edge data into function instances.

A node's incoming edges carry distribution keywords (§4.1): ``all``
sends every item of the set to a single downstream instance, ``each``
creates one instance per item, and ``key`` creates one instance per
distinct item key.  This module computes, from the delivered input
sets and their edge metadata, how many instances of a node run and
which input sets each instance receives.

Rules when a node has several incoming edges (the paper leaves this
implicit; we document our choice):

* any number of ``all`` edges — their sets are broadcast to every
  instance;
* several ``each`` edges must deliver the same item count and are
  zipped by position;
* several ``key`` edges are matched by key (each must provide every
  key that appears);
* mixing ``each`` and ``key`` on one node is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..composition.graph import Distribution
from ..data.items import DataItem, DataSet, group_items_by_key
from ..errors import InvocationError

__all__ = ["InstancePlan", "expand_instances"]


@dataclass(frozen=True, slots=True)
class InstancePlan:
    """Input sets for one instance of a node."""

    index: int
    input_sets: list[DataSet]
    key: "str | None" = None   # the group key for KEY-distributed instances


def expand_instances(
    node_name: str,
    deliveries: "list[tuple[str, Distribution, DataSet]]",
) -> list[InstancePlan]:
    """Compute the instances of a node from its delivered inputs.

    ``deliveries`` contains one ``(input_set_name, distribution, data)``
    triple per incoming edge / composition input (composition inputs
    use ``all``).
    """
    for _name, dist, _data in deliveries:
        if dist is not Distribution.ALL:
            break
    else:
        # All edges broadcast (the overwhelmingly common case): one
        # instance receiving every delivered set under its input name.
        return [
            InstancePlan(
                index=0,
                input_sets=[_renamed(data, name) for name, _dist, data in deliveries],
            )
        ]

    broadcast = [(name, data) for name, dist, data in deliveries if dist is Distribution.ALL]
    each = [(name, data) for name, dist, data in deliveries if dist is Distribution.EACH]
    keyed = [(name, data) for name, dist, data in deliveries if dist is Distribution.KEY]

    if each and keyed:
        raise InvocationError(
            f"node {node_name!r}: mixing 'each' and 'key' distributions is not supported"
        )

    if not each and not keyed:
        input_sets = [_renamed(data, name) for name, data in broadcast]
        return [InstancePlan(index=0, input_sets=input_sets)]

    if each:
        counts = {len(data) for _name, data in each}
        if len(counts) != 1:
            raise InvocationError(
                f"node {node_name!r}: 'each' edges deliver mismatched item "
                f"counts {sorted(counts)}"
            )
        (count,) = counts
        plans = []
        for index in range(count):
            input_sets = [
                DataSet(name, [data[index]]) for name, data in each
            ] + [_renamed(data, name) for name, data in broadcast]
            plans.append(InstancePlan(index=index, input_sets=input_sets))
        return plans

    # KEY distribution: group by key, one instance per distinct key.
    # One pass per delivered set (group_items_by_key) instead of the
    # former rescan of the whole set for every distinct key; lazy sets
    # group without materializing any payload.
    groupings = [(name, group_items_by_key(data)) for name, data in keyed]
    reference_keys = list(groupings[0][1])
    reference_set = set(reference_keys)
    for _name, groups in groupings[1:]:
        if set(groups) != reference_set:
            raise InvocationError(
                f"node {node_name!r}: 'key' edges deliver mismatched key sets"
            )
    plans = []
    for index, key in enumerate(reference_keys):
        input_sets = [
            DataSet(name, groups[key]) for name, groups in groupings
        ] + [_renamed(data, name) for name, data in broadcast]
        plans.append(InstancePlan(index=index, input_sets=input_sets, key=key))
    return plans


def _renamed(data: DataSet, name: str) -> DataSet:
    """The delivered set under the consumer's input-set name."""
    return DataSet.renamed(data, name)


def merge_instance_outputs(
    output_set_names: "list[str]",
    per_instance_outputs: "list[list[DataSet]]",
) -> "dict[str, DataSet]":
    """Union instance outputs per output set.

    Item-name collisions across instances (each instance writing, say,
    ``result``) are disambiguated with an instance-index prefix so the
    merged set remains well-formed.  Collision checks use the target
    set's ident index, so merging is linear in the total item count.
    """
    if len(per_instance_outputs) == 1:
        # Single instance (the overwhelmingly common case): no
        # cross-instance collisions are possible, so reuse its output
        # sets directly instead of re-adding every item.
        produced = {data_set.ident: data_set for data_set in per_instance_outputs[0]}
        return {
            name: produced.get(name) or DataSet(name) for name in output_set_names
        }

    merged: dict[str, DataSet] = {name: DataSet(name) for name in output_set_names}
    for instance_index, outputs in enumerate(per_instance_outputs):
        for data_set in outputs:
            target = merged.get(data_set.ident)
            if target is None:
                continue
            for item in data_set:
                if item.ident in target:
                    target.add(
                        DataItem(f"i{instance_index}.{item.ident}", item.data, key=item.key)
                    )
                else:
                    target.add(item)
    return merged
