"""Window-batched routing for the sharded simulator.

In the sharded engine the dispatcher only sees the cluster at window
boundaries: each shard reports its workers' outstanding counts at the
barrier, the reports are merged into one fleet-wide view (see
:class:`~repro.cluster.sharding.ShardPlan`), and every arrival of the
next window is routed against that view through the ordinary
``repro.sched`` policy machinery — the same immutable
:class:`~repro.sched.snapshots.ClusterSnapshot` contract the live
cluster manager uses, which is exactly why routing needs no access to
shard-local state.

Between refreshes the router tracks its own decisions: each routed
invocation increments the target's outstanding estimate, so a burst
arriving within one window spreads over the fleet instead of piling
onto the worker that looked emptiest at the barrier.  The estimate is
replaced wholesale by the next barrier report (completions come back
as decrements implicitly).

Determinism: the router consumes arrivals in trace order and policies
break ties by worker index, so the decision sequence depends only on
the trace and the barrier reports — not on the shard count.
"""

from __future__ import annotations

from ..cluster.sharding import INVOCATION, ShardPlan
from ..sched import ClusterSnapshot, LeastOutstanding, make_routing_policy
from ..sim.distributions import Rng

__all__ = ["WindowedRouter"]


class WindowedRouter:
    """Routes one window of arrivals at a time over a merged fleet view."""

    __slots__ = ("_plan", "_policy", "_estimates", "_snapshot", "_fast_least")

    def __init__(self, plan: ShardPlan, policy: str = "least_loaded", seed: int = 0):
        worker_count = plan.worker_count
        self._plan = plan
        self._policy = make_routing_policy(policy, Rng(seed))
        # Least-outstanding over a fault-free fleet is "first index of
        # the minimum estimate" — computable with two C-level list scans
        # instead of a Python loop over candidates.  The decision
        # sequence is identical to ``policy.decide`` (ascending healthy
        # tuple, tie-break by lowest index); pinned by a parity test.
        self._fast_least = type(self._policy) is LeastOutstanding
        self._estimates = [0] * worker_count
        # One long-lived snapshot: `healthy`/`health` never change (the
        # sharded engine is fault-free) and `in_flight` references the
        # live estimate list, which only this router mutates.
        self._snapshot = ClusterSnapshot(
            healthy=tuple(range(worker_count)),
            worker_count=worker_count,
            health=[True] * worker_count,
            in_flight=self._estimates,
        )

    def refresh(self, per_shard_outstanding: "list[list[int]]") -> None:
        """Replace estimates with the barrier reports (merged globally)."""
        self._estimates[:] = self._plan.merge(per_shard_outstanding)

    def outstanding_total(self) -> int:
        return sum(self._estimates)

    def route(self) -> int:
        """Pick a worker for the next arrival and charge the estimate."""
        worker = self._policy.decide(self._snapshot)
        if worker is None:  # fleet is never empty here
            raise RuntimeError("routing policy declined a fault-free fleet")
        self._estimates[worker] += 1
        return worker

    def route_window(self, arrivals, dispatch_delay: float) -> "list[bytearray]":
        """Route one window of ``(time, fn_index, duration)`` arrivals.

        Returns per-shard delivery batches as wire-ready payloads of
        packed :data:`~repro.cluster.sharding.INVOCATION` records
        ``(delivery_time, worker, fn_index, duration, arrival_time)``,
        delivery being arrival plus the dispatch delay (the conservative
        lookahead: nothing routed in this window can take effect earlier
        than that).  Packing while routing skips an intermediate
        per-record tuple list — at 100× trace scale that layer alone is
        measurable (millions of short-lived 5-tuples per run).
        """
        payloads = [bytearray() for _ in range(self._plan.shard_count)]
        shard_of = self._plan.shard_of
        estimates = self._estimates
        pack = INVOCATION.pack
        if self._fast_least:
            index = estimates.index
            for t, fn_index, duration in arrivals:
                worker = index(min(estimates))
                estimates[worker] += 1
                payloads[shard_of(worker)] += pack(
                    t + dispatch_delay, worker, fn_index, duration, t
                )
            return payloads
        decide = self._policy.decide
        snapshot = self._snapshot
        for t, fn_index, duration in arrivals:
            worker = decide(snapshot)
            if worker is None:  # fleet is never empty here
                raise RuntimeError("routing policy declined a fault-free fleet")
            estimates[worker] += 1
            payloads[shard_of(worker)] += pack(
                t + dispatch_delay, worker, fn_index, duration, t
            )
        return payloads
