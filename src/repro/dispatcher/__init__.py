"""Dispatcher: orchestration, instance expansion, memory accounting."""

from .dispatcher import Dispatcher, InvocationResult, NodeFailure
from .expansion import InstancePlan, expand_instances, merge_instance_outputs
from .memory import MemoryTracker

__all__ = [
    "Dispatcher",
    "InvocationResult",
    "NodeFailure",
    "InstancePlan",
    "expand_instances",
    "merge_instance_outputs",
    "MemoryTracker",
]
