"""Committed-memory accounting for a worker node.

Dandelion "commits and consumes memory only while requests are actively
running since a new context is created for each request" (§7.8).  The
tracker observes every live memory context and maintains the
committed-bytes time series that the Azure-trace experiments (Figs 1
and 10) report.
"""

from __future__ import annotations

from ..data.context import MemoryContext
from ..sim.core import Environment
from ..sim.metrics import TimeSeries

__all__ = ["MemoryTracker"]


class MemoryTracker:
    """Tracks committed bytes across live memory contexts over time."""

    __slots__ = (
        "env",
        "series",
        "_committed_by_context",
        "current_bytes",
        "peak_bytes",
    )

    def __init__(self, env: Environment):
        self.env = env
        self.series = TimeSeries("committed_bytes")
        self.series.record(env.now, 0)
        self._committed_by_context: dict[int, int] = {}
        self.current_bytes = 0
        self.peak_bytes = 0

    def observe(self, context: MemoryContext) -> None:
        """Record a context's current committed size (new or updated)."""
        key = id(context)
        previous = self._committed_by_context.get(key, 0)
        now_committed = context.committed
        if now_committed == previous:
            return
        self._committed_by_context[key] = now_committed
        self._record(now_committed - previous)

    def release(self, context: MemoryContext) -> None:
        """A context has been freed; drop its contribution."""
        key = id(context)
        previous = self._committed_by_context.pop(key, 0)
        if previous:
            self._record(-previous)

    def _record(self, delta: int) -> None:
        current = self.current_bytes + delta
        self.current_bytes = current
        if current > self.peak_bytes:
            self.peak_bytes = current
        self.series.record(self.env.now, current)

    @property
    def live_context_count(self) -> int:
        return len(self._committed_by_context)

    def average_committed(self, start: float = None, end: float = None) -> float:
        """Time-weighted mean committed bytes over a window."""
        return self.series.time_weighted_mean(start, end)
