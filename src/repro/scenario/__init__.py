"""Declarative scenario harness + unified KPI pipeline.

``repro.scenario`` turns "add a scenario" from a new Python module
into a ~20-line TOML spec (ROADMAP item 4).  Three layers:

* :mod:`~repro.scenario.spec` — the validated, seedable
  :class:`ScenarioSpec` schema (trace × workload × fleet × faults ×
  sched), canonical TOML/dict round-trip;
* :mod:`~repro.scenario.engine` — one code path assembling cluster,
  workload, injector, and request stream from a spec and running it in
  virtual time (:func:`run_scenario`), shared by the §6.1/§6.2/§6.3
  experiments and the full-scale Fig 10 replay;
* :mod:`~repro.scenario.kpis` — the schema-versioned
  :class:`KpiRecord` each run emits, with tolerance-band
  :func:`diff_records`/:func:`diff_matrices` for cross-commit
  comparison, and :mod:`~repro.scenario.sweep` for CLI cross-products.

Bundled specs live in ``scenario/specs/*.toml``; see docs/scenarios.md
and ``python -m repro scenario list``.
"""

from .engine import ScenarioRun, assemble_cluster, build_requests, run_scenario
from .kpis import (
    KPI_SCHEMA,
    MATRIX_SCHEMA,
    KpiDiff,
    KpiRecord,
    MetricDelta,
    diff_matrices,
    diff_records,
)
from .spec import (
    SPEC_SCHEMA,
    FaultSpec,
    FleetSpec,
    ScenarioSpec,
    SchedSpec,
    SpecError,
    TraceSpec,
    WorkloadSpec,
    bundled_specs,
    load_spec,
    scenario_from_dict,
    scenario_from_toml,
    validate_names,
)
from .sweep import parse_axis_argument, run_sweep

__all__ = [
    "SPEC_SCHEMA",
    "KPI_SCHEMA",
    "MATRIX_SCHEMA",
    "FaultSpec",
    "FleetSpec",
    "KpiDiff",
    "KpiRecord",
    "MetricDelta",
    "ScenarioRun",
    "ScenarioSpec",
    "SchedSpec",
    "SpecError",
    "TraceSpec",
    "WorkloadSpec",
    "assemble_cluster",
    "build_requests",
    "bundled_specs",
    "diff_matrices",
    "diff_records",
    "load_spec",
    "parse_axis_argument",
    "run_scenario",
    "run_sweep",
    "scenario_from_dict",
    "scenario_from_toml",
    "validate_names",
]
