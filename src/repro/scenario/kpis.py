"""Uniform KPI records + tolerance-band diffing (`repro.scenario`).

Every scenario run — synthetic cluster or streamed sharded replay —
emits one :class:`KpiRecord`: a flat, schema-versioned set of KPIs
(goodput, latency percentiles, utilization, imbalance, modelled cost)
plus fault/defense counters, serializable to JSON and byte-identical
across runs of the same spec + seed (the determinism contract of
docs/scenarios.md).

:func:`diff_records` compares two records with per-metric *relative*
tolerance bands and direction awareness: goodput up is an improvement,
p99 up is a regression, counter drift is a "change".  ``NaN`` is the
canonical "no samples" value (an arm with zero completions has no
p50); two NaNs diff as **equal**, a NaN appearing or disappearing is a
change.  :func:`diff_matrices` lifts the same comparison over sweep
matrices, matching arms by their override coordinates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

__all__ = [
    "KPI_SCHEMA",
    "MATRIX_SCHEMA",
    "CORE_HOUR_USD",
    "KpiRecord",
    "MetricDelta",
    "KpiDiff",
    "DEFAULT_TOLERANCES",
    "DEFAULT_COUNTER_TOLERANCE",
    "diff_records",
    "diff_matrices",
]

KPI_SCHEMA = "repro-kpi/v1"
MATRIX_SCHEMA = "repro-kpi-matrix/v1"

# Modelled fleet cost: a flat on-demand core-hour price (the point is
# comparability across arms of one sweep, not cloud billing fidelity).
CORE_HOUR_USD = 0.04

_NAN = float("nan")


@dataclass(frozen=True)
class KpiRecord:
    """The KPIs of one scenario run.

    Latency percentiles are milliseconds; ``NaN`` marks KPIs with no
    samples (zero completions) or not modelled on this path
    (utilization/imbalance of streamed replays).  ``counters`` holds
    the fault/defense tallies (retries, reroutes, crashes, limps,
    quarantines, hedges, hedge_rate_pct); ``extras`` carries
    path-specific KPIs (e.g. committed_mean_mib of streamed replays).
    Both participate in :func:`diff_records`.
    """

    schema: str = KPI_SCHEMA
    scenario: str = ""
    seed: int = 0
    spec_digest: str = ""
    offered: int = 0
    completed: int = 0
    duration_seconds: float = 0.0
    goodput_rps: float = 0.0
    success_pct: float = 0.0
    p50_ms: float = _NAN
    p95_ms: float = _NAN
    p99_ms: float = _NAN
    utilization: float = _NAN
    imbalance: float = _NAN
    cost_usd: float = 0.0
    counters: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(KpiRecord)}

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, 2-space indent, NaN literal)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "KpiRecord":
        known = {f.name for f in fields(KpiRecord)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"KpiRecord: unknown key(s) {', '.join(unknown)}")
        schema = payload.get("schema", KPI_SCHEMA)
        if schema != KPI_SCHEMA:
            raise ValueError(
                f"KpiRecord: expected schema {KPI_SCHEMA!r}, got {schema!r}"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "KpiRecord":
        return cls.from_dict(json.loads(text))


# -- diffing ------------------------------------------------------------------

# Relative tolerance bands per top-level metric.  0.0 = exact.
DEFAULT_TOLERANCES = {
    "offered": 0.0,
    "completed": 0.01,
    "duration_seconds": 0.0,
    "goodput_rps": 0.02,
    "success_pct": 0.01,
    "p50_ms": 0.10,
    "p95_ms": 0.15,
    "p99_ms": 0.20,
    "utilization": 0.02,
    "imbalance": 0.10,
    "cost_usd": 0.0,
}

# Counter/extra entries drift with unrelated model changes; give them a
# wide band by default (override per key via `tolerances`).
DEFAULT_COUNTER_TOLERANCE = 0.25

_HIGHER_IS_BETTER = {"goodput_rps", "success_pct", "utilization",
                     "offered", "completed"}
_LOWER_IS_BETTER = {"p50_ms", "p95_ms", "p99_ms", "imbalance", "cost_usd"}

EQUAL = "equal"
WITHIN = "within"
IMPROVED = "improved"
REGRESSED = "regressed"
CHANGED = "changed"


@dataclass(frozen=True)
class MetricDelta:
    """One metric's comparison verdict."""

    metric: str
    old: float
    new: float
    tolerance: float
    status: str  # equal | within | improved | regressed | changed

    @property
    def out_of_band(self) -> bool:
        return self.status in (IMPROVED, REGRESSED, CHANGED)


@dataclass
class KpiDiff:
    """All metric verdicts of one record-vs-record comparison."""

    deltas: list

    @property
    def regressions(self) -> list:
        return [d for d in self.deltas if d.status == REGRESSED]

    @property
    def changes(self) -> list:
        return [d for d in self.deltas if d.status == CHANGED]

    @property
    def improvements(self) -> list:
        return [d for d in self.deltas if d.status == IMPROVED]

    @property
    def ok(self) -> bool:
        """No regressions and no unclassified changes (improvements pass)."""
        return not self.regressions and not self.changes

    def render(self) -> str:
        lines = []
        for delta in self.deltas:
            if not delta.out_of_band:
                continue
            lines.append(
                f"  {delta.status:9} {delta.metric}: "
                f"{delta.old:g} -> {delta.new:g} "
                f"(tolerance {delta.tolerance:.0%})"
            )
        counts = (
            f"{len(self.deltas)} metric(s): "
            f"{len(self.regressions)} regressed, "
            f"{len(self.changes)} changed, "
            f"{len(self.improvements)} improved"
        )
        return "\n".join([counts] + lines)


def _is_nan(value) -> bool:
    return isinstance(value, float) and value != value


def _direction(metric: str) -> str:
    base = metric.rsplit(".", 1)[-1]
    if base in _HIGHER_IS_BETTER:
        return "higher"
    if base in _LOWER_IS_BETTER:
        return "lower"
    return "neutral"


def _compare(metric: str, old, new, tolerance: float) -> MetricDelta:
    old_nan, new_nan = _is_nan(old), _is_nan(new)
    if old_nan and new_nan:
        return MetricDelta(metric, old, new, tolerance, EQUAL)
    if old_nan or new_nan:
        return MetricDelta(metric, old, new, tolerance, CHANGED)
    old_f, new_f = float(old), float(new)
    if old_f == new_f:
        return MetricDelta(metric, old_f, new_f, tolerance, EQUAL)
    denominator = max(abs(old_f), abs(new_f))
    relative = abs(new_f - old_f) / denominator
    if relative <= tolerance:
        return MetricDelta(metric, old_f, new_f, tolerance, WITHIN)
    direction = _direction(metric)
    if direction == "neutral":
        return MetricDelta(metric, old_f, new_f, tolerance, CHANGED)
    better = new_f > old_f if direction == "higher" else new_f < old_f
    return MetricDelta(
        metric, old_f, new_f, tolerance, IMPROVED if better else REGRESSED
    )


def _flatten(record) -> dict:
    """Record (KpiRecord or dict) → flat {metric: value} numeric map."""
    payload = record.to_dict() if isinstance(record, KpiRecord) else dict(record)
    flat = {}
    for key, value in payload.items():
        if key in ("schema", "scenario", "spec_digest", "seed"):
            continue
        if isinstance(value, dict):
            for sub_key, sub_value in value.items():
                flat[f"{key}.{sub_key}"] = sub_value
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[key] = value
    return flat


def diff_records(old, new, tolerances: "dict | None" = None) -> KpiDiff:
    """Compare two KPI records under per-metric relative tolerances.

    ``tolerances`` overrides/extends :data:`DEFAULT_TOLERANCES`; keys
    may be top-level metrics, ``counters.<name>``, ``extras.<name>``,
    or the bare counter/extra name.  Metrics present on only one side
    diff as NaN-vs-value, i.e. a *change*.
    """
    bands = dict(DEFAULT_TOLERANCES)
    if tolerances:
        bands.update(tolerances)
    old_flat, new_flat = _flatten(old), _flatten(new)
    deltas = []
    for metric in sorted(set(old_flat) | set(new_flat)):
        tolerance = bands.get(metric)
        if tolerance is None:
            tolerance = bands.get(metric.rsplit(".", 1)[-1])
        if tolerance is None:
            tolerance = (
                DEFAULT_COUNTER_TOLERANCE if "." in metric else 0.0
            )
        deltas.append(_compare(
            metric,
            old_flat.get(metric, _NAN),
            new_flat.get(metric, _NAN),
            tolerance,
        ))
    return KpiDiff(deltas)


def diff_matrices(old: dict, new: dict,
                  tolerances: "dict | None" = None) -> "list[tuple]":
    """Compare two sweep matrices arm by arm.

    Returns ``[(arm_label, KpiDiff | None), ...]`` sorted by label;
    ``None`` marks an arm present on only one side (always a failure).
    """
    def _index(matrix: dict) -> dict:
        if matrix.get("schema") != MATRIX_SCHEMA:
            raise ValueError(
                f"expected schema {MATRIX_SCHEMA!r}, "
                f"got {matrix.get('schema')!r}"
            )
        return {
            json.dumps(entry["arm"], sort_keys=True): entry["kpis"]
            for entry in matrix["records"]
        }

    old_arms, new_arms = _index(old), _index(new)
    out = []
    for label in sorted(set(old_arms) | set(new_arms)):
        if label not in old_arms or label not in new_arms:
            out.append((label, None))
        else:
            out.append((label, diff_records(
                old_arms[label], new_arms[label], tolerances
            )))
    return out
