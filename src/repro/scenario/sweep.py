"""Cross-product sweeps over scenario axes (`repro.scenario`).

A sweep is a base :class:`~repro.scenario.spec.ScenarioSpec` plus
ordered override axes — ``--axis policy=random,jsq,gray --axis
fleet=4,8,16`` — run as a full cross-product, one seeded engine run
per arm, collected into a schema-versioned KPI matrix::

    {"schema": "repro-kpi-matrix/v1",
     "spec": {...base spec, canonical...},
     "axes": [{"axis": "sched.routing", "values": [...]}, ...],
     "records": [{"arm": {"sched.routing": "jsq", "fleet.workers": 4},
                  "kpis": {...KpiRecord...}}, ...]}

Axis names accept friendly aliases (``policy`` → ``sched.routing``,
``fleet`` → ``fleet.workers``) or any dotted spec path.  Arms iterate
with the *first* axis outermost, and every arm re-runs from the base
seed — arms are completely independent, so the matrix is
order-invariant and byte-identical per spec + axes (the §6.2 sweep of
EXPERIMENTS.md is exactly ``sec62.toml`` × policy × fleet).
"""

from __future__ import annotations

import itertools

from .engine import run_scenario
from .kpis import MATRIX_SCHEMA
from .spec import ScenarioSpec, SpecError

__all__ = [
    "AXIS_ALIASES",
    "resolve_axis",
    "parse_axis_value",
    "parse_axis_argument",
    "run_sweep",
]

# Friendly spellings for common sweep axes; anything else must be a
# dotted spec path (validated by ScenarioSpec.with_overrides).
AXIS_ALIASES = {
    "policy": "sched.routing",
    "routing": "sched.routing",
    "fleet": "fleet.workers",
    "workers": "fleet.workers",
    "cores": "fleet.cores",
    "backend": "fleet.backend",
    "platform": "fleet.platform",
    "apps": "trace.apps",
    "rps": "trace.rps",
    "rps_per_worker": "trace.rps_per_worker",
    "duration": "trace.duration_seconds",
    "scale": "trace.scale",
    "transient": "faults.transient_rate",
    "mttf": "faults.mttf_seconds",
    "severity": "faults.limp_severity",
    "hedge": "sched.hedge",
    "latency_health": "sched.latency_health",
    "seed": "seed",
}


def resolve_axis(name: str) -> str:
    return AXIS_ALIASES.get(name, name)


def parse_axis_value(text: str):
    """CLI text → typed value: bool, int, float, else string."""
    lowered = text.strip()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(lowered)
    except ValueError:
        pass
    try:
        return float(lowered)
    except ValueError:
        pass
    return lowered


def parse_axis_argument(argument: str) -> tuple:
    """``"policy=random,jsq"`` → ``("sched.routing", [values...])``."""
    name, eq, values_text = argument.partition("=")
    if not eq or not name.strip() or not values_text.strip():
        raise SpecError(
            f"axis {argument!r}: expected NAME=VALUE[,VALUE...]"
        )
    values = [
        parse_axis_value(value)
        for value in values_text.split(",")
        if value.strip() != ""
    ]
    if not values:
        raise SpecError(f"axis {argument!r}: no values")
    return resolve_axis(name.strip()), values


def run_sweep(
    spec: ScenarioSpec,
    axes: list,
    *,
    shards: int = 1,
    executor: str = "auto",
    engine: str = "lean",
    runner=run_scenario,
) -> dict:
    """Run the cross-product of ``axes`` over ``spec``; returns a matrix.

    ``axes`` is ``[(dotted_path, [values...]), ...]`` in sweep order
    (first axis outermost).  Every arm is checked up front so a typo'd
    policy name fails before minutes of simulation.
    """
    if not axes:
        raise SpecError("sweep: at least one --axis is required")
    paths = [path for path, _values in axes]
    value_lists = [values for _path, values in axes]
    arms = [
        dict(zip(paths, combo))
        for combo in itertools.product(*value_lists)
    ]
    for arm in arms:  # validate the whole matrix before running any arm
        spec.with_overrides(arm)
    records = []
    for arm in arms:
        arm_spec = spec.with_overrides(arm)
        run = runner(arm_spec, shards=shards, executor=executor, engine=engine)
        records.append({"arm": arm, "kpis": run.kpis.to_dict()})
    return {
        "schema": MATRIX_SCHEMA,
        "spec": spec.to_dict(),
        "axes": [
            {"axis": path, "values": list(values)}
            for path, values in axes
        ],
        "records": records,
    }
