"""Declarative scenario specifications (`repro.scenario` schema layer).

A :class:`ScenarioSpec` names everything that *determines the KPIs* of
one run: trace source × workload shape × fleet × fault profile ×
scheduling policy × seed.  Anything that cannot change the KPIs —
shard count, executor choice, output paths — deliberately stays out of
the spec and lives on the engine call instead, so the determinism
contract reads: **same spec + same seed ⇒ byte-identical KpiRecord**
(under ``PYTHONHASHSEED=0``; see docs/scenarios.md).

Specs load from TOML files or plain dicts with defaulting and
unknown-key *rejection* (a typo'd knob must fail loudly, not silently
run the default), and serialize canonically: ``to_dict()`` emits every
field explicitly in declaration order, so two specs are equal iff
their canonical forms are equal, and ``parse → serialize → parse`` is
the identity (pinned by a hypothesis property in the test suite).

Policy/backend *names* in a spec resolve against the live registries
(:data:`repro.sched.ROUTING_POLICIES`, :data:`~repro.sched.CORE_POLICIES`,
:data:`~repro.sched.SCALING_POLICIES`, :data:`repro.backends.BACKEND_NAMES`)
via :func:`validate_names` — shared by the engine and the SCN lint
pass so a spec never fails deep inside cluster assembly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from dataclasses import dataclass, field, fields
from typing import Optional

try:  # Python >= 3.11
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback below
    _tomllib = None

__all__ = [
    "SPEC_SCHEMA",
    "SpecError",
    "TraceSpec",
    "WorkloadSpec",
    "FleetSpec",
    "FaultSpec",
    "SchedSpec",
    "ScenarioSpec",
    "scenario_from_dict",
    "scenario_from_toml",
    "validate_names",
    "bundled_spec_dir",
    "bundled_specs",
    "load_spec",
]

SPEC_SCHEMA = "repro-scenario/v1"

_TRACE_KINDS = ("synthetic", "streamed")
_PLATFORMS = ("dandelion", "faas")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class SpecError(ValueError):
    """A scenario spec failed to parse or validate."""


# -- field coercion -----------------------------------------------------------


def _coerce(value, spec_field, where: str):
    """Type-check one field value; ints widen to declared floats."""
    declared = spec_field.type
    label = f"{where}.{spec_field.name}"
    if declared == "bool":
        if not isinstance(value, bool):
            raise SpecError(f"{label}: expected a boolean, got {value!r}")
        return value
    if declared == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"{label}: expected an integer, got {value!r}")
        return value
    if declared in ("float", "Optional[float]"):
        if value is None and declared.startswith("Optional"):
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"{label}: expected a number, got {value!r}")
        value = float(value)
        if value != value or value in (float("inf"), float("-inf")):
            raise SpecError(f"{label}: must be finite")
        return value
    if declared == "str":
        if not isinstance(value, str):
            raise SpecError(f"{label}: expected a string, got {value!r}")
        return value
    raise SpecError(f"{label}: unsupported field type {declared!r}")


def _build_section(cls, payload, where: str):
    """Instantiate a section dataclass from a dict, rejecting unknowns."""
    if not isinstance(payload, dict):
        raise SpecError(f"{where}: expected a table, got {type(payload).__name__}")
    allowed = {f.name: f for f in fields(cls)}
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SpecError(
            f"{where}: unknown key(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(allowed))})"
        )
    return cls(**{
        key: _coerce(value, allowed[key], where)
        for key, value in payload.items()
    })


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


# -- sections -----------------------------------------------------------------


@dataclass(frozen=True)
class TraceSpec:
    """Where requests come from.

    ``synthetic``: seeded Poisson arrivals over ``duration_seconds`` at
    ``rps`` (absolute) or ``rps_per_worker × fleet.workers``, spread
    over ``apps`` Zipf-popular applications.  ``streamed``: an
    Azure-shaped streamed trace at ``scale`` × the 1× reference sample
    (``functions_base`` functions, ``rps_base`` aggregate rps), replayed
    through the sharded simulator in ``window_seconds`` batches.

    The arrival stream is drawn from ``Rng(seed + seed_offset)``; with
    ``reseed_per_fleet`` the offset is the fleet size instead, so every
    policy arm of a sweep sees the *same* request stream per fleet size
    (the §6.2 discipline).
    """

    kind: str = "synthetic"
    rps: float = 0.0
    rps_per_worker: float = 0.0
    duration_seconds: float = 4.0
    apps: int = 1
    zipf_skew: float = 1.0
    seed_offset: int = 17
    reseed_per_fleet: bool = False
    # streamed kind only:
    scale: float = 1.0
    functions_base: int = 100
    rps_base: float = 12.0
    window_seconds: float = 0.5

    def check(self) -> None:
        _require(self.kind in _TRACE_KINDS,
                 f"trace.kind: {self.kind!r} is not one of {_TRACE_KINDS}")
        _require(self.duration_seconds > 0, "trace.duration_seconds: must be > 0")
        _require(self.apps >= 1, "trace.apps: must be >= 1")
        _require(self.rps >= 0 and self.rps_per_worker >= 0,
                 "trace: request rates must be >= 0")
        if self.kind == "synthetic":
            _require((self.rps > 0) != (self.rps_per_worker > 0),
                     "trace: exactly one of rps / rps_per_worker must be > 0")
        else:
            _require(self.rps == 0 and self.rps_per_worker == 0,
                     "trace: streamed load is rps_base x scale; "
                     "rps / rps_per_worker must stay 0")
            _require(self.scale > 0, "trace.scale: must be > 0")
            _require(self.functions_base >= 1, "trace.functions_base: must be >= 1")
            _require(self.rps_base > 0, "trace.rps_base: must be > 0")
            _require(self.window_seconds > 0, "trace.window_seconds: must be > 0")
        _require(self.zipf_skew >= 0, "trace.zipf_skew: must be >= 0")


@dataclass(frozen=True)
class WorkloadSpec:
    """The function(s) the trace invokes.

    One pure echo compute function per app (``<name>_fn``, or
    ``<name>_fn_<i>`` when ``trace.apps > 1``) wrapped in a single-stage
    composition (``<name>`` / ``<name>_<i>``), costing
    ``compute_seconds`` per invocation; ``binary_mib > 0`` gives each
    app a heavy sandbox binary so cold loads dominate (the §6.2 shape).
    """

    name: str = "echo"
    compute_seconds: float = 4e-3
    binary_mib: float = 0.0
    payload: str = "ping"

    def check(self) -> None:
        _require(bool(_NAME_RE.match(self.name)),
                 f"workload.name: {self.name!r} is not an identifier")
        _require(self.compute_seconds > 0, "workload.compute_seconds: must be > 0")
        _require(self.binary_mib >= 0, "workload.binary_mib: must be >= 0")


@dataclass(frozen=True)
class FleetSpec:
    """Cluster size and per-worker shape."""

    workers: int = 4
    cores: int = 4
    backend: str = "kvm"
    machine: str = "linux"
    platform: str = "dandelion"  # streamed traces: dandelion | faas

    def check(self) -> None:
        _require(self.workers >= 1, "fleet.workers: must be >= 1")
        _require(self.cores >= 1, "fleet.cores: must be >= 1")
        _require(self.platform in _PLATFORMS,
                 f"fleet.platform: {self.platform!r} is not one of {_PLATFORMS}")


@dataclass(frozen=True)
class FaultSpec:
    """What goes wrong, and how hard the platform may fight back.

    ``transient_rate`` crashes individual task executions (absorbed by
    up to ``max_retries`` backoff retries under ``deadline_seconds``);
    ``mttf_seconds > 0`` arms the fail-stop injector (exponential
    MTTF/MTTR, seeded from ``seed + seed_offset``); the ``limp_*`` knobs
    add gray-failure limp cycles (§6.3) on the same injector.
    """

    transient_rate: float = 0.0
    max_retries: int = 2
    deadline_seconds: Optional[float] = None
    mttf_seconds: float = 0.0
    mttr_seconds: float = 0.25
    limp_mttf_seconds: float = 0.0
    limp_duration_seconds: float = 0.0
    limp_severity: float = 1.0
    seed_offset: int = 29

    def check(self) -> None:
        _require(0.0 <= self.transient_rate < 1.0,
                 "faults.transient_rate: must be in [0, 1)")
        _require(self.max_retries >= 0, "faults.max_retries: must be >= 0")
        if self.deadline_seconds is not None:
            _require(self.deadline_seconds > 0,
                     "faults.deadline_seconds: must be > 0 (or omitted)")
        _require(self.mttf_seconds >= 0, "faults.mttf_seconds: must be >= 0")
        _require(self.mttr_seconds > 0, "faults.mttr_seconds: must be > 0")
        _require(self.limp_mttf_seconds >= 0,
                 "faults.limp_mttf_seconds: must be >= 0")
        _require(self.limp_duration_seconds >= 0,
                 "faults.limp_duration_seconds: must be >= 0")
        _require(self.limp_severity >= 1.0,
                 "faults.limp_severity: must be >= 1 (1 = healthy speed)")


@dataclass(frozen=True)
class SchedSpec:
    """Scheduling knobs, by registry name (see docs/scheduling.md)."""

    routing: str = "least_loaded"
    cores: str = "static"      # CORE_POLICIES; "pi" enables the control plane
    autoscaler: str = "none"   # SCALING_POLICIES
    latency_health: bool = False
    hedge: bool = False
    hedge_percentile: float = 95.0
    hedge_budget_fraction: float = 0.05
    quarantine_ttl_seconds: float = 1.0

    def check(self) -> None:
        _require(0.0 < self.hedge_percentile < 100.0,
                 "sched.hedge_percentile: must be in (0, 100)")
        _require(0.0 <= self.hedge_budget_fraction <= 1.0,
                 "sched.hedge_budget_fraction: must be in [0, 1]")
        _require(self.quarantine_ttl_seconds > 0,
                 "sched.quarantine_ttl_seconds: must be > 0")


_SECTIONS = (
    ("trace", TraceSpec),
    ("workload", WorkloadSpec),
    ("fleet", FleetSpec),
    ("faults", FaultSpec),
    ("sched", SchedSpec),
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified, seedable scenario."""

    name: str = "scenario"
    description: str = ""
    seed: int = 0
    trace: TraceSpec = field(default_factory=TraceSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    sched: SchedSpec = field(default_factory=SchedSpec)

    # -- validation -----------------------------------------------------------

    def check(self) -> None:
        _require(bool(_NAME_RE.match(self.name)),
                 f"name: {self.name!r} is not an identifier")
        for section_name, _cls in _SECTIONS:
            getattr(self, section_name).check()
        if self.trace.kind == "streamed":
            _require(self.trace.apps == 1,
                     "trace.apps: streamed traces carry their own app "
                     "population; apps must stay 1")
            _require(self.faults.mttf_seconds == 0
                     and self.faults.transient_rate == 0
                     and self.faults.limp_mttf_seconds == 0,
                     "faults: fault injection is not supported on the "
                     "streamed (sharded) path yet")

    # -- derived knobs --------------------------------------------------------

    def offered_rps(self) -> float:
        """Aggregate synthetic request rate, resolved against the fleet."""
        if self.trace.rps > 0:
            return self.trace.rps
        return self.trace.rps_per_worker * self.fleet.workers

    def trace_seed(self) -> int:
        if self.trace.reseed_per_fleet:
            return self.seed + self.fleet.workers
        return self.seed + self.trace.seed_offset

    def fault_seed(self) -> int:
        return self.seed + self.faults.seed_offset

    # -- canonical serialization ----------------------------------------------

    def to_dict(self) -> dict:
        """Complete canonical form: every field, declaration order.

        ``None`` values (an unset deadline) are omitted — absence *is*
        the canonical spelling of "unset", so the round trip is exact.
        """
        payload = {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
        }
        for section_name, cls in _SECTIONS:
            section = getattr(self, section_name)
            payload[section_name] = {
                f.name: getattr(section, f.name)
                for f in fields(cls)
                if getattr(section, f.name) is not None
            }
        return payload

    def to_toml(self) -> str:
        payload = self.to_dict()
        lines = [
            f"schema = {_toml_value(payload['schema'])}",
            f"name = {_toml_value(payload['name'])}",
            f"description = {_toml_value(payload['description'])}",
            f"seed = {_toml_value(payload['seed'])}",
        ]
        for section_name, _cls in _SECTIONS:
            lines.append("")
            lines.append(f"[{section_name}]")
            for key, value in payload[section_name].items():
                lines.append(f"{key} = {_toml_value(value)}")
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        """Stable content hash of the canonical form."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- overrides ------------------------------------------------------------

    def with_overrides(self, overrides: dict) -> "ScenarioSpec":
        """A new spec with dotted-path overrides applied and re-checked.

        Keys are top-level fields (``seed``) or ``section.field`` paths
        (``sched.routing``, ``fleet.workers``); values are type-checked
        against the target field.
        """
        spec = self
        for path, value in overrides.items():
            spec = spec._with_override(path, value)
        spec.check()
        return spec

    def _with_override(self, path: str, value) -> "ScenarioSpec":
        top = {f.name: f for f in fields(ScenarioSpec)}
        if "." not in path:
            if path not in top or path in dict(_SECTIONS):
                raise SpecError(f"override {path!r}: unknown scalar field")
            return dataclasses.replace(
                self, **{path: _coerce(value, top[path], "spec")}
            )
        section_name, _, field_name = path.partition(".")
        sections = dict(_SECTIONS)
        if section_name not in sections:
            raise SpecError(f"override {path!r}: unknown section "
                            f"{section_name!r}")
        cls = sections[section_name]
        allowed = {f.name: f for f in fields(cls)}
        if field_name not in allowed:
            raise SpecError(f"override {path!r}: unknown field "
                            f"{field_name!r} in [{section_name}]")
        section = getattr(self, section_name)
        updated = dataclasses.replace(
            section,
            **{field_name: _coerce(value, allowed[field_name], section_name)},
        )
        return dataclasses.replace(self, **{section_name: updated})


# -- parsing ------------------------------------------------------------------


def scenario_from_dict(payload: dict) -> ScenarioSpec:
    """Build and validate a :class:`ScenarioSpec` from a plain dict."""
    if not isinstance(payload, dict):
        raise SpecError(f"spec: expected a table, got {type(payload).__name__}")
    payload = dict(payload)
    schema = payload.pop("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        raise SpecError(f"schema: expected {SPEC_SCHEMA!r}, got {schema!r}")
    top = {f.name: f for f in fields(ScenarioSpec)}
    sections = dict(_SECTIONS)
    kwargs = {}
    for key, value in payload.items():
        if key in sections:
            kwargs[key] = _build_section(sections[key], value, key)
        elif key in top:
            kwargs[key] = _coerce(value, top[key], "spec")
        else:
            raise SpecError(
                f"spec: unknown key {key!r} "
                f"(known: {', '.join(sorted(top))})"
            )
    spec = ScenarioSpec(**kwargs)
    spec.check()
    return spec


def scenario_from_toml(text: str) -> ScenarioSpec:
    """Parse TOML text into a validated :class:`ScenarioSpec`."""
    return scenario_from_dict(parse_toml(text))


def parse_toml(text: str) -> dict:
    """TOML → dict via stdlib tomllib, else the bundled subset parser."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise SpecError(f"TOML parse error: {exc}") from exc
    return parse_toml_subset(text)


def parse_toml_subset(text: str) -> dict:
    """Parse the two-level ``[section]`` / ``key = value`` TOML subset.

    Fallback for Python < 3.11 (no :mod:`tomllib`), and the grammar
    :meth:`ScenarioSpec.to_toml` emits: basic strings, integers,
    floats, booleans, comments.  No arrays, no nested tables.
    """
    root: dict = {}
    table = root
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_toml_comment(raw_line, lineno).strip()
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise SpecError(f"TOML line {lineno}: malformed table header")
            name = line[1:-1].strip()
            if not _NAME_RE.match(name):
                raise SpecError(f"TOML line {lineno}: bad table name {name!r}")
            if name in root:
                raise SpecError(f"TOML line {lineno}: duplicate table {name!r}")
            table = root.setdefault(name, {})
            continue
        key, eq, value_text = line.partition("=")
        key = key.strip()
        if not eq or not _NAME_RE.match(key):
            raise SpecError(f"TOML line {lineno}: expected 'key = value'")
        if key in table:
            raise SpecError(f"TOML line {lineno}: duplicate key {key!r}")
        table[key] = _parse_toml_scalar(value_text.strip(), lineno)
    return root


def _strip_toml_comment(line: str, lineno: int) -> str:
    out = []
    in_string = False
    escaped = False
    for char in line:
        if in_string:
            out.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == "#":
            break
        out.append(char)
        if char == '"':
            in_string = True
    if in_string:
        raise SpecError(f"TOML line {lineno}: unterminated string")
    return "".join(out)


def _parse_toml_scalar(text: str, lineno: int):
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith('"'):
        if len(text) < 2 or not text.endswith('"'):
            raise SpecError(f"TOML line {lineno}: unterminated string")
        body = text[1:-1]
        out = []
        index = 0
        while index < len(body):
            char = body[index]
            if char == '"':
                raise SpecError(f"TOML line {lineno}: stray quote in string")
            if char == "\\":
                index += 1
                if index >= len(body) or body[index] not in ('"', "\\"):
                    raise SpecError(
                        f"TOML line {lineno}: unsupported escape in string"
                    )
                out.append(body[index])
            else:
                out.append(char)
            index += 1
        return "".join(out)
    if re.fullmatch(r"[+-]?[0-9][0-9_]*", text):
        return int(text.replace("_", ""))
    try:
        return float(text.replace("_", ""))
    except ValueError:
        raise SpecError(
            f"TOML line {lineno}: cannot parse value {text!r}"
        ) from None


def _toml_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SpecError("spec floats must be finite")
        text = repr(value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(value, str):
        return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    raise SpecError(f"cannot serialize {value!r} to TOML")


# -- registry-name validation -------------------------------------------------


def validate_names(spec: ScenarioSpec) -> list:
    """Resolve the spec's policy/backend names against the registries.

    Returns ``[(code, message), ...]`` — empty when every name resolves.
    Shared by the engine (raises on the first entry) and the SCN lint
    pass (reports all of them), so the two can never disagree.
    """
    from ..backends.base import BACKEND_NAMES, BACKEND_SPECS
    from ..sched import CORE_POLICIES, ROUTING_POLICIES, SCALING_POLICIES

    problems = []
    if spec.sched.routing not in ROUTING_POLICIES:
        problems.append((
            "SCN002",
            f"sched.routing: unknown routing policy {spec.sched.routing!r} "
            f"(registered: {', '.join(sorted(ROUTING_POLICIES))})",
        ))
    if spec.sched.cores not in CORE_POLICIES:
        problems.append((
            "SCN003",
            f"sched.cores: unknown core policy {spec.sched.cores!r} "
            f"(registered: {', '.join(sorted(CORE_POLICIES))})",
        ))
    if spec.sched.autoscaler not in SCALING_POLICIES:
        problems.append((
            "SCN004",
            f"sched.autoscaler: unknown scaling policy "
            f"{spec.sched.autoscaler!r} "
            f"(registered: {', '.join(sorted(SCALING_POLICIES))})",
        ))
    if spec.fleet.backend not in BACKEND_NAMES:
        problems.append((
            "SCN005",
            f"fleet.backend: unknown backend {spec.fleet.backend!r} "
            f"(registered: {', '.join(BACKEND_NAMES)})",
        ))
    if spec.fleet.machine not in BACKEND_SPECS:
        problems.append((
            "SCN005",
            f"fleet.machine: unknown machine {spec.fleet.machine!r} "
            f"(registered: {', '.join(sorted(BACKEND_SPECS))})",
        ))
    return problems


# -- bundled specs ------------------------------------------------------------


def bundled_spec_dir() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "specs")


def bundled_specs() -> dict:
    """Bundled scenario names → spec file paths, sorted by name."""
    directory = bundled_spec_dir()
    out = {}
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".toml"):
            out[entry[:-5]] = os.path.join(directory, entry)
    return out


def load_spec(ref: str) -> ScenarioSpec:
    """Load a spec from a file path or a bundled scenario name."""
    path = ref
    if not os.path.exists(path):
        bundled = bundled_specs()
        if ref not in bundled:
            raise SpecError(
                f"no spec file {ref!r} and no bundled scenario of that name "
                f"(bundled: {', '.join(bundled) or 'none'})"
            )
        path = bundled[ref]
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        return scenario_from_toml(text)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from exc
