"""One code path from :class:`ScenarioSpec` to a seeded run + KPIs.

This module is the engine half of `repro.scenario`: it assembles the
cluster (worker config, routing policy, health tracker, hedging),
registers the workload, arms the fault injector, builds the seeded
request stream, drives it to completion in virtual time, and distills
the run into one :class:`~repro.scenario.kpis.KpiRecord`.

The §6.1/§6.2/§6.3 experiments and the full-scale Fig 10 replay are
thin spec-plus-rendering wrappers over :func:`run_scenario`; their
committed outputs are byte-identical to the pre-refactor hand-plumbed
versions, which pins the engine's seed conventions:

* the arrival stream comes from ``Rng(spec.trace_seed())`` — zipf
  weights are pure arithmetic and app draws use a forked stream, so a
  one-app trace consumes exactly the draws of a plain Poisson stream;
* the fail-stop/limp injector (armed iff ``faults.mttf_seconds > 0``)
  is seeded ``Rng(spec.fault_seed())`` and forks per-worker streams;
* workers and the routing policy derive their streams from
  ``spec.seed`` exactly as :class:`~repro.cluster.manager.ClusterManager`
  always has.

Execution knobs that KPIs are invariant to — ``shards``, ``executor``,
``engine`` of the streamed path — are arguments of :func:`run_scenario`,
not spec fields (see docs/scenarios.md, "Determinism contract").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster.faults import WorkerFaultInjector
from ..cluster.manager import ClusterManager
from ..functions.sdk import compute_function
from ..sim.distributions import Rng
from ..worker import WorkerConfig
from .kpis import CORE_HOUR_USD, KpiRecord
from .spec import ScenarioSpec, SpecError, validate_names

__all__ = [
    "ScenarioRun",
    "run_scenario",
    "assemble_cluster",
    "build_requests",
    "build_workload",
    "composition_names",
]

MiB = 1 << 20

_COMPOSITION_TEMPLATE = """
composition {comp} {{
    compute stage uses {fn} in(data) out(result);
    input data -> stage.data;
    output stage.result -> result;
}}
"""


@dataclass
class ScenarioRun:
    """Everything one engine run produced.

    ``kpis`` is the uniform deterministic record; ``cluster`` /
    ``injector`` (synthetic) and ``report`` (streamed) expose the raw
    objects for experiment wrappers that render richer tables; ``meta``
    carries wall-clock observability that must never feed rendered
    output.
    """

    spec: ScenarioSpec
    kpis: KpiRecord
    cluster: Optional[ClusterManager] = None
    injector: Optional[WorkerFaultInjector] = None
    report: object = None
    meta: dict = field(default_factory=dict)


# -- workload -----------------------------------------------------------------


def composition_names(spec: ScenarioSpec) -> list:
    """The composition name(s) the trace invokes, in app order."""
    name = spec.workload.name
    if spec.trace.apps == 1:
        return [name]
    return [f"{name}_{index}" for index in range(spec.trace.apps)]


def _function_names(spec: ScenarioSpec) -> list:
    name = spec.workload.name
    if spec.trace.apps == 1:
        return [f"{name}_fn"]
    return [f"{name}_fn_{index}" for index in range(spec.trace.apps)]


def _echo_binary(fn_name: str, compute_seconds: float, binary_bytes: int):
    kwargs = {"name": fn_name, "compute_cost": compute_seconds}
    if binary_bytes > 0:
        kwargs["binary_size"] = binary_bytes

    @compute_function(**kwargs)
    def scenario_echo(vfs):
        vfs.write_bytes("/out/result/data", vfs.read_bytes("/in/data/data"))

    return scenario_echo


def build_workload(spec: ScenarioSpec) -> list:
    """``[(function_binary, composition_dsl), ...]``, one pair per app."""
    binary_bytes = int(spec.workload.binary_mib * MiB)
    pairs = []
    for comp_name, fn_name in zip(composition_names(spec), _function_names(spec)):
        binary = _echo_binary(fn_name, spec.workload.compute_seconds,
                              binary_bytes)
        dsl = _COMPOSITION_TEMPLATE.format(comp=comp_name, fn=fn_name)
        pairs.append((binary, dsl))
    return pairs


# -- assembly -----------------------------------------------------------------


def _raise_on_unknown_names(spec: ScenarioSpec) -> None:
    problems = validate_names(spec)
    if problems:
        raise SpecError("; ".join(message for _code, message in problems))


def assemble_cluster(spec: ScenarioSpec):
    """Spec → (cluster, injector-or-None), workload registered.

    The injector is armed iff ``faults.mttf_seconds > 0``; limp cycles
    ride the same injector (§6.3 disables crashes with an astronomical
    MTTF rather than a second injector).
    """
    _raise_on_unknown_names(spec)
    config = WorkerConfig(
        total_cores=spec.fleet.cores,
        backend=spec.fleet.backend,
        machine=spec.fleet.machine,
        control_plane_enabled=spec.sched.cores == "pi",
        transient_failure_rate=spec.faults.transient_rate,
        max_retries=spec.faults.max_retries,
        default_timeout=spec.faults.deadline_seconds,
        seed=spec.seed,
    )
    cluster = ClusterManager(
        worker_count=spec.fleet.workers,
        worker_config=config,
        policy=spec.sched.routing,
        seed=spec.seed,
        latency_health=spec.sched.latency_health,
        quarantine_ttl_seconds=spec.sched.quarantine_ttl_seconds,
        hedge=spec.sched.hedge,
        hedge_percentile=spec.sched.hedge_percentile,
        hedge_budget_fraction=spec.sched.hedge_budget_fraction,
    )
    for binary, dsl in build_workload(spec):
        cluster.register_function(binary)
        cluster.register_composition(dsl)
    injector = None
    if spec.faults.mttf_seconds > 0:
        injector = WorkerFaultInjector(
            cluster,
            mttf_seconds=spec.faults.mttf_seconds,
            mttr_seconds=spec.faults.mttr_seconds,
            seed=spec.fault_seed(),
            limp_mttf_seconds=spec.faults.limp_mttf_seconds,
            limp_duration_seconds=spec.faults.limp_duration_seconds,
            limp_severity=spec.faults.limp_severity,
        )
    return cluster, injector


# -- trace --------------------------------------------------------------------


def build_requests(spec: ScenarioSpec) -> list:
    """Deterministic ``[(arrival_seconds, app_index), ...]`` stream.

    Single-app traces consume exactly the draws of a plain Poisson
    stream; multi-app traces additionally draw each request's app from
    a *forked* stream against Zipf popularity weights (pure arithmetic,
    no draws), so the arrival times are identical either way.
    """
    trace_seed = spec.trace_seed()
    rps = spec.offered_rps()
    duration = spec.trace.duration_seconds
    arrival_rng = Rng(trace_seed)
    apps = spec.trace.apps
    if apps == 1:
        return [(t, 0) for t in arrival_rng.poisson_arrivals(rps, duration)]
    app_rng = Rng(trace_seed).fork(1)
    weights = arrival_rng.zipf_weights(apps, spec.trace.zipf_skew)
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    requests = []
    for arrive_at in arrival_rng.poisson_arrivals(rps, duration):
        draw = app_rng.uniform()
        app = next(
            index for index, edge in enumerate(cumulative) if draw <= edge
        )
        requests.append((arrive_at, app))
    return requests


def _drive(cluster: ClusterManager, spec: ScenarioSpec, requests: list):
    """Run the request stream to completion; returns (offered, completed)."""
    env = cluster.env
    names = composition_names(spec)
    payload = spec.workload.payload.encode("utf-8")
    completed = [0]

    def one(arrive_at, app):
        delay = arrive_at - env.now
        if delay > 0:
            yield env.timeout(delay)
        result = yield cluster.invoke(names[app], {"data": payload})
        if result.ok:
            completed[0] += 1

    def driver():
        processes = [env.process(one(t, app)) for t, app in requests]
        if processes:
            yield env.all_of(processes)

    env.run(until=env.process(driver()))
    return len(requests), completed[0]


# -- KPIs ---------------------------------------------------------------------


def _fleet_cost_usd(workers: int, cores: int, duration_seconds: float) -> float:
    return workers * cores * duration_seconds / 3600.0 * CORE_HOUR_USD


def _imbalance(cluster: ClusterManager) -> float:
    counts = [
        cluster.per_worker_invocations[i] for i in range(len(cluster.workers))
    ]
    total = sum(counts)
    if not counts or total == 0:
        return float("nan")
    return max(counts) / (total / len(counts))


def _cluster_kpis(spec, cluster, injector, offered, completed) -> KpiRecord:
    duration = spec.trace.duration_seconds
    stats = cluster.stats()
    failures, gray = stats["failures"], stats["gray"]
    have_latencies = len(cluster.latencies) > 0
    nan = float("nan")
    busy_core_seconds = completed * spec.workload.compute_seconds
    capacity = spec.fleet.workers * spec.fleet.cores * duration
    return KpiRecord(
        scenario=spec.name,
        seed=spec.seed,
        spec_digest=spec.digest(),
        offered=offered,
        completed=completed,
        duration_seconds=duration,
        goodput_rps=completed / duration,
        success_pct=100.0 * completed / offered if offered else 100.0,
        p50_ms=cluster.latencies.median * 1e3 if have_latencies else nan,
        p95_ms=cluster.latencies.percentile(95) * 1e3 if have_latencies else nan,
        p99_ms=cluster.latencies.p99 * 1e3 if have_latencies else nan,
        utilization=busy_core_seconds / capacity,
        imbalance=_imbalance(cluster),
        cost_usd=_fleet_cost_usd(spec.fleet.workers, spec.fleet.cores, duration),
        counters={
            "retries": sum(
                worker.dispatcher.retries_performed
                for worker in cluster.workers
            ),
            "reroutes": failures["reroutes"],
            "crashes": failures["worker_crashes"],
            "failed": failures["failed_invocations"],
            "limps": injector.limps_injected if injector is not None else 0,
            "quarantines": gray["quarantine_entries"],
            "hedges": gray["hedges_issued"],
            "hedge_rate_pct": 100.0 * gray["hedge_rate"],
        },
    )


def _report_kpis(spec, report) -> KpiRecord:
    duration = spec.trace.duration_seconds
    nan = float("nan")
    have_latencies = bool(report.latencies)
    return KpiRecord(
        scenario=spec.name,
        seed=spec.seed,
        spec_digest=spec.digest(),
        offered=report.routed,
        completed=report.completed,
        duration_seconds=duration,
        goodput_rps=report.completed / duration,
        success_pct=(
            100.0 * report.completed / report.routed if report.routed else 100.0
        ),
        p50_ms=report.latency_percentile(50) * 1e3 if have_latencies else nan,
        p95_ms=report.latency_percentile(95) * 1e3 if have_latencies else nan,
        p99_ms=report.latency_percentile(99) * 1e3 if have_latencies else nan,
        utilization=nan,
        imbalance=nan,
        cost_usd=_fleet_cost_usd(spec.fleet.workers, spec.fleet.cores, duration),
        counters={
            "retries": 0, "reroutes": 0, "crashes": 0, "failed": 0,
            "limps": 0, "quarantines": 0, "hedges": 0, "hedge_rate_pct": 0.0,
        },
        extras={
            "committed_mean_mib": report.committed_mean_bytes / MiB,
            "active_mean_mib": (
                report.active_mean_bytes / MiB
                if report.active_mean_bytes is not None
                else report.committed_mean_bytes / MiB
            ),
            "cold_starts": float(report.cold_starts),
            "cold_fraction": (
                report.cold_starts / report.completed
                if report.completed else 0.0
            ),
            "windows": float(report.windows),
        },
    )


# -- entry point --------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec,
    *,
    shards: int = 1,
    executor: str = "auto",
    engine: str = "lean",
) -> ScenarioRun:
    """Run one spec to completion, seeded; returns a :class:`ScenarioRun`.

    ``shards`` / ``executor`` / ``engine`` only apply to streamed
    traces and cannot change the KPIs (the sharded simulator's
    invariance contract) — which is why they are call arguments rather
    than spec fields.
    """
    spec.check()
    if spec.trace.kind == "streamed":
        return _run_streamed(spec, shards=shards, executor=executor,
                             engine=engine)
    cluster, injector = assemble_cluster(spec)
    requests = build_requests(spec)
    offered, completed = _drive(cluster, spec, requests)
    kpis = _cluster_kpis(spec, cluster, injector, offered, completed)
    return ScenarioRun(
        spec=spec, kpis=kpis, cluster=cluster, injector=injector
    )


def _run_streamed(spec: ScenarioSpec, *, shards, executor, engine):
    from ..sim.sharded import ShardedConfig, run_sharded_replay
    from ..trace.stream import streamed_trace

    _raise_on_unknown_names(spec)
    trace = streamed_trace(
        function_count=round(spec.trace.functions_base * spec.trace.scale),
        duration_seconds=spec.trace.duration_seconds,
        total_rps=spec.trace.rps_base * spec.trace.scale,
        seed=spec.trace_seed(),
    )
    config = ShardedConfig(
        workers=spec.fleet.workers,
        cores_per_worker=spec.fleet.cores,
        shards=shards,
        window_seconds=spec.trace.window_seconds,
        platform=spec.fleet.platform,
        policy=spec.sched.routing,
        engine=engine,
        executor=executor,
        seed=spec.seed,
    )
    report = run_sharded_replay(trace, config)
    kpis = _report_kpis(spec, report)
    return ScenarioRun(
        spec=spec,
        kpis=kpis,
        report=report,
        meta={"function_count": trace.function_count},
    )
