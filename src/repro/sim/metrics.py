"""Measurement utilities used by experiments and platform telemetry.

``LatencyRecorder`` accumulates scalar samples and reports order
statistics; ``TimeSeries`` records (time, value) pairs and supports
time-weighted averaging (used for "committed memory over time" in the
Azure-trace experiments, Figs 1 and 10); ``Counter`` is a labelled
monotonic counter bag.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Optional

__all__ = ["LatencyRecorder", "TimeSeries", "Counter", "percentile", "relative_variance"]


def percentile(sorted_samples: list[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) by linear interpolation.

    ``sorted_samples`` must be sorted ascending.  An empty sample set
    has no order statistics: the result is ``nan`` (which
    :func:`~repro.experiments.common.fmt` renders as ``-``), so an
    experiment arm that produced no completions reports an honest blank
    instead of crashing the whole run at the reporting step.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} out of range")
    if not sorted_samples:
        return float("nan")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (q / 100.0) * (len(sorted_samples) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_samples[low]
    fraction = rank - low
    return sorted_samples[low] * (1 - fraction) + sorted_samples[high] * fraction


def relative_variance(samples: Iterable[float]) -> float:
    """Variance divided by squared mean, as a percentage.

    This matches the paper's "relative variance" metric in §7.6 (e.g.
    1.30% for Dandelion image compression vs 389.6% for Firecracker).
    """
    values = list(samples)
    if not values:
        raise ValueError("no samples")
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return 100.0 * variance / (mean * mean)


class LatencyRecorder:
    """Accumulates latency samples and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self._sorted: list[float] = []
        self._sum = 0.0

    def record(self, value: float) -> None:
        """Add one sample (negative samples are rejected)."""
        if value < 0:
            raise ValueError(f"negative latency {value}")
        insort(self._sorted, value)
        self._sum += value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        if not self._sorted:
            return float("nan")
        return self._sum / len(self._sorted)

    @property
    def minimum(self) -> float:
        if not self._sorted:
            return float("nan")
        return self._sorted[0]

    @property
    def maximum(self) -> float:
        if not self._sorted:
            return float("nan")
        return self._sorted[-1]

    def percentile(self, q: float) -> float:
        return percentile(self._sorted, q)

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def relative_variance(self) -> float:
        return relative_variance(self._sorted)

    def summary(self) -> dict:
        """All headline statistics as a plain dict (for report rows).

        An empty recorder reports ``count: 0`` and ``nan`` for every
        statistic — same keys either way, so report code never has to
        special-case the no-completions arm.
        """
        if not self._sorted:
            nan = float("nan")
            return {
                "name": self.name,
                "count": 0,
                "mean": nan,
                "min": nan,
                "p50": nan,
                "p95": nan,
                "p99": nan,
                "max": nan,
            }
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.maximum,
        }


class TimeSeries:
    """A piecewise-constant signal sampled at irregular times.

    ``record(t, v)`` states that the signal holds value ``v`` from time
    ``t`` until the next recording.  Queries assume recordings arrive
    in non-decreasing time order.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError("timestamps must be non-decreasing")
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> list[float]:
        return list(self._times)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def value_at(self, time: float) -> float:
        """Signal value at ``time`` (value of the latest recording <= t)."""
        if not self._times:
            raise ValueError("empty series")
        index = bisect_right(self._times, time) - 1
        if index < 0:
            raise ValueError(f"time {time} precedes first recording")
        return self._values[index]

    def time_weighted_mean(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Average of the signal over [start, end], weighted by duration."""
        if not self._times:
            raise ValueError("empty series")
        if start is None:
            start = self._times[0]
        if end is None:
            end = self._times[-1]
        if end < start:
            raise ValueError("end before start")
        if end == start:
            return self.value_at(start)
        total = 0.0
        begin = bisect_left(self._times, start)
        if begin > 0 and (begin == len(self._times) or self._times[begin] > start):
            begin -= 1
        previous_time = start
        previous_value = self.value_at(start)
        for index in range(begin, len(self._times)):
            t = self._times[index]
            if t <= start:
                continue
            if t >= end:
                break
            total += previous_value * (t - previous_time)
            previous_time = t
            previous_value = self._values[index]
        total += previous_value * (end - previous_time)
        return total / (end - start)

    def maximum(self) -> float:
        if not self._values:
            raise ValueError("empty series")
        return max(self._values)

    def resample(self, step: float, start: Optional[float] = None, end: Optional[float] = None) -> "list[tuple[float, float]]":
        """Return (t, value) pairs on a regular grid, for plotting rows."""
        if step <= 0:
            raise ValueError("step must be positive")
        if not self._times:
            raise ValueError("empty series")
        if start is None:
            start = self._times[0]
        if end is None:
            end = self._times[-1]
        first, last = self._times[0], self._times[-1]
        points = []
        t = start
        while t <= end + 1e-12:
            # Clamp the lookup into the recorded span: grid points
            # before the first recording take its value (instead of
            # value_at raising), points past the last hold it.
            points.append((t, self.value_at(min(max(t, first), last))))
            t += step
        return points


class Counter:
    """A bag of named monotonic counters."""

    def __init__(self):
        self._counts: dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)
