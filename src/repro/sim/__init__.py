"""Discrete-event simulation substrate for the Dandelion reproduction."""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .cpu import ProcessorSharingCpu
from .distributions import Rng
from .metrics import Counter, LatencyRecorder, TimeSeries, percentile, relative_variance
from .resources import PriorityStore, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Rng",
    "ProcessorSharingCpu",
    "Counter",
    "LatencyRecorder",
    "TimeSeries",
    "percentile",
    "relative_variance",
    "PriorityStore",
    "Request",
    "Resource",
    "Store",
]
