"""One shard of the partitioned cluster simulation.

A :class:`ShardSim` owns one event kernel over its slice of the fleet.
Between barriers it runs free; at a barrier it ingests the window's
delivery batch, runs to the window end, and reports per-worker
outstanding counts plus the window's completion latencies.

The lean engine drives the kernel's heap directly with packed tuples
``(time, seq, worker, kind, a, b)`` instead of :class:`~repro.sim.core.Event`
objects: a completion is one tuple push, a delivery is *no* heap
traffic at all — the window's batch is already time-sorted (trace order
plus a constant dispatch delay), so :meth:`ShardSim.run_window` merges
it against the heap head directly.  Each delivery still reserves one
kernel sequence number at the barrier, which keeps same-time
tie-breaking byte-identical to the event-object formulation and keeps
the ``events`` KPI counting deliveries.  Worker semantics are pinned to
:class:`~repro.trace.replay.DandelionTraceWorker`: FIFO core queueing,
memory committed only while a core slot is held, service time = sandbox
creation + duration.  :class:`ClassicShardSim` keeps the
generator+``Resource`` formulation alive as the wall-clock baseline;
the invariance suite asserts both produce byte-identical KPIs.

Everything a worker records is a function of its own delivery sequence
only — workers never observe each other — so grouping workers into
shards cannot change any per-worker result.  That is the whole
shard-count-invariance argument; see docs/simulation.md.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from ..core import Environment
from ..resources import Resource

__all__ = [
    "ShardSim",
    "ClassicShardSim",
    "PLATFORM_DANDELION",
    "PLATFORM_FAAS",
]

PLATFORM_DANDELION = "dandelion"
PLATFORM_FAAS = "faas"


# Lean heap-entry kinds (tuple field 3).
_COMPLETE = 0
_EXPIRE = 1


class _StepSeries:
    """Per-worker step-function accumulator over [0, duration].

    Replaces :class:`~repro.sim.metrics.TimeSeries` for the sharded
    engine: instead of storing every point it folds each change into
    the time-weighted integral and a fixed resample grid on the fly, so
    memory stays O(grid) across millions of events.  Values are ints
    (bytes), so sums across workers are exact and grouping-independent.
    """

    __slots__ = ("duration", "step", "grid", "_grid_index", "value", "_last", "integral")

    def __init__(self, duration: float, step: float):
        self.duration = duration
        self.step = step
        self.grid = [0] * (int(duration / step) + 1)
        self._grid_index = 0
        self.value = 0
        self._last = 0.0
        self.integral = 0.0

    def record(self, t: float, value: int) -> None:
        duration = self.duration
        last = self._last
        old = self.value
        if last < duration:
            capped = t if t < duration else duration
            self.integral += old * (capped - last)
            self._last = capped
        # Grid points strictly before t keep the old value; a point at
        # exactly t takes the new one (TimeSeries.value_at semantics).
        grid = self.grid
        index = self._grid_index
        count = len(grid)
        if index < count:
            step = self.step
            while index < count and index * step < t:
                grid[index] = old
                index += 1
            self._grid_index = index
        self.value = value

    def finalize(self) -> None:
        """Extend the final value through the end of the window."""
        self.record(self.duration + self.step, self.value)


class _LeanDandelionWorker:
    """Dandelion node: per-request contexts, no keep-alive state."""

    __slots__ = (
        "env", "cores_free", "queue", "committed", "creation",
        "memory_of", "latencies", "series", "completed",
    )

    def __init__(self, env, cores, creation_seconds, memory_of, duration, grid_step):
        self.env = env
        self.cores_free = cores
        self.queue = deque()
        self.committed = 0
        self.creation = creation_seconds
        self.memory_of = memory_of
        self.latencies: list[float] = []
        self.series = _StepSeries(duration, grid_step)
        self.completed = 0

    def _start(self, fn_index, duration, arrival) -> None:
        self.cores_free -= 1
        env = self.env
        self.committed += self.memory_of[fn_index]
        self.series.record(env._now, self.committed)
        seq = env._seq
        env._seq = seq + 1
        heappush(
            env._queue,
            (env._now + (self.creation + duration), seq, self, _COMPLETE, fn_index, arrival),
        )

    def _complete(self, fn_index, arrival) -> None:
        env = self.env
        self.committed -= self.memory_of[fn_index]
        self.series.record(env._now, self.committed)
        self.latencies.append(env._now - arrival)
        self.completed += 1
        self.cores_free += 1
        if self.queue:
            self._start(*self.queue.popleft())

    def _expire(self, a, b) -> None:  # pragma: no cover - dandelion never expires
        raise AssertionError("dandelion workers schedule no expiry events")


class _Sandbox:
    """One warm MicroVM; ``idle_token`` versions its keep-alive timer."""

    __slots__ = ("fn_index", "idle_token", "idle", "dead")

    def __init__(self, fn_index):
        self.fn_index = fn_index
        self.idle_token = 0
        self.idle = False
        self.dead = False


class _LeanFaasWorker:
    """Firecracker+Knative-style node with keep-alive sandbox reuse.

    A lean restatement of :class:`~repro.baselines.base.FaasPlatform`
    under :class:`~repro.baselines.base.KeepAlivePolicy`: committed
    memory covers warm (idle) and busy sandboxes, active memory only
    busy ones; a cold start pays the control-plane + restore + paging
    path, a warm start only the hot hop.  Reuse pops the most recently
    idled sandbox (LIFO), so the oldest warm sandboxes are the ones
    keep-alive reaps.
    """

    __slots__ = (
        "env", "cores_free", "queue", "committed", "active",
        "memory_of", "overhead", "cold_start", "hot_start", "paging_per_mib",
        "slowdown", "keep_alive", "latencies", "series", "active_series",
        "completed", "cold_starts", "idle_of",
    )

    def __init__(self, env, cores, memory_of, duration, grid_step, *,
                 overhead, cold_start, hot_start, paging_per_mib, slowdown, keep_alive):
        self.env = env
        self.cores_free = cores
        self.queue = deque()
        self.committed = 0
        self.active = 0
        self.memory_of = memory_of
        self.overhead = overhead
        self.cold_start = cold_start
        self.hot_start = hot_start
        self.paging_per_mib = paging_per_mib
        self.slowdown = slowdown
        self.keep_alive = keep_alive
        self.latencies: list[float] = []
        self.series = _StepSeries(duration, grid_step)
        self.active_series = _StepSeries(duration, grid_step)
        self.completed = 0
        self.cold_starts = 0
        self.idle_of: dict[int, list[_Sandbox]] = {}

    def _start(self, fn_index, duration, arrival) -> None:
        self.cores_free -= 1
        env = self.env
        footprint = self.memory_of[fn_index] + self.overhead
        sandbox = None
        stack = self.idle_of.get(fn_index)
        while stack:
            candidate = stack.pop()
            if not candidate.dead:
                sandbox = candidate
                break
        if sandbox is None:
            sandbox = _Sandbox(fn_index)
            self.cold_starts += 1
            self.committed += footprint
            self.series.record(env._now, self.committed)
            setup = self.cold_start + self.paging_per_mib * (footprint / (1024 * 1024))
        else:
            setup = self.hot_start
        sandbox.idle = False
        sandbox.idle_token += 1
        self.active += footprint
        self.active_series.record(env._now, self.active)
        seq = env._seq
        env._seq = seq + 1
        heappush(
            env._queue,
            (env._now + (setup + duration * self.slowdown), seq, self, _COMPLETE, sandbox, arrival),
        )

    def _complete(self, sandbox, arrival) -> None:
        env = self.env
        footprint = self.memory_of[sandbox.fn_index] + self.overhead
        self.active -= footprint
        self.active_series.record(env._now, self.active)
        self.latencies.append(env._now - arrival)
        self.completed += 1
        sandbox.idle = True
        sandbox.idle_token += 1
        self.idle_of.setdefault(sandbox.fn_index, []).append(sandbox)
        seq = env._seq
        env._seq = seq + 1
        heappush(
            env._queue,
            (env._now + self.keep_alive, seq, self, _EXPIRE, sandbox, sandbox.idle_token),
        )
        self.cores_free += 1
        if self.queue:
            self._start(*self.queue.popleft())

    def _expire(self, sandbox, token) -> None:
        if sandbox.idle and not sandbox.dead and sandbox.idle_token == token:
            sandbox.dead = True
            self.committed -= self.memory_of[sandbox.fn_index] + self.overhead
            self.series.record(self.env._now, self.committed)


class ShardSim:
    """One shard: a lean event kernel over a slice of the fleet."""

    __slots__ = ("env", "workers", "worker_indices", "cores", "_by_global", "_pending")

    def __init__(self, worker_indices, config: dict):
        self.env = Environment()
        self.worker_indices = tuple(worker_indices)
        self.cores = config["cores_per_worker"]
        duration = config["duration_seconds"]
        grid_step = config["grid_step"]
        memory_of = config["memory_of"]
        platform = config["platform"]
        self.workers = []
        for _ in self.worker_indices:
            if platform == PLATFORM_DANDELION:
                worker = _LeanDandelionWorker(
                    self.env, self.cores, config["creation_seconds"],
                    memory_of, duration, grid_step,
                )
            elif platform == PLATFORM_FAAS:
                worker = _LeanFaasWorker(
                    self.env, self.cores, memory_of, duration, grid_step,
                    overhead=config["guest_overhead_bytes"],
                    cold_start=config["cold_start_seconds"],
                    hot_start=config["hot_start_seconds"],
                    paging_per_mib=config["paging_seconds_per_mib"],
                    slowdown=config["compute_slowdown"],
                    keep_alive=config["keep_alive_seconds"],
                )
            else:
                raise ValueError(f"unknown platform {platform!r}")
            self.workers.append(worker)
        self._by_global = {
            index: worker for index, worker in zip(self.worker_indices, self.workers)
        }
        # Deliveries routed but not yet due: (time, seq, worker, fn,
        # duration, arrival), time-sorted (see run_window).
        self._pending: list[tuple] = []

    def run_window(self, records, end: float) -> None:
        """Ingest one window's delivery batch and run the kernel to ``end``.

        ``records`` is time-sorted (trace order shifted by the constant
        dispatch delay), so instead of scheduling heap events the loop
        merges the batch against the heap head.  Each delivery reserves
        one kernel sequence number *at the barrier, in batch order* —
        exactly the seqs per-delivery events would have drawn — so
        same-time ordering against completion/expiry events is
        byte-identical to the event-object formulation.
        """
        env = self.env
        queue = env._queue
        pending = self._pending
        if records:
            seq = env._seq
            by_global = self._by_global
            append = pending.append
            for delivery, worker, fn_index, duration, arrival in records:
                append((delivery, seq, by_global[worker], fn_index, duration, arrival))
                seq += 1
            env._seq = seq
        # Deliveries drive the outer loop (the batch is already sorted
        # and seq-ordered); the inner loop drains every heap event that
        # sorts before the delivery at hand.  Same event order as a
        # single merged loop, but each delivery tuple is fetched and
        # compared once instead of once per interleaved event.
        i = 0
        n = len(pending)
        while i < n:
            d = pending[i]
            d_time = d[0]
            if d_time > end:
                break
            d_seq = d[1]
            while queue:
                e = queue[0]
                e_time = e[0]
                if e_time > d_time or (e_time == d_time and e[1] > d_seq):
                    break
                heappop(queue)
                env._now = e_time
                if e[3]:
                    e[2]._expire(e[4], e[5])
                else:
                    e[2]._complete(e[4], e[5])
            i += 1
            env._now = d_time
            worker = d[2]
            if worker.cores_free:
                worker._start(d[3], d[4], d[5])
            else:
                worker.queue.append((d[3], d[4], d[5]))
        if i:
            del pending[:i]
        while queue:
            e = queue[0]
            e_time = e[0]
            if e_time > end:
                break
            heappop(queue)
            env._now = e_time
            if e[3]:
                e[2]._expire(e[4], e[5])
            else:
                e[2]._complete(e[4], e[5])
        env._now = end

    def outstanding(self) -> list[int]:
        """Queued + in-service count per worker, local order."""
        return [
            (self.cores - w.cores_free) + len(w.queue) for w in self.workers
        ]

    def drain_latencies(self) -> list[float]:
        """This window's completion latencies, worker order; clears them."""
        drained: list[float] = []
        for worker in self.workers:
            drained.extend(worker.latencies)
            worker.latencies.clear()
        return drained

    @property
    def events(self) -> int:
        return self.env._seq

    def final_summary(self) -> dict:
        """Per-worker aggregates for the end-of-run merge (JSON-safe)."""
        workers = []
        for worker in self.workers:
            worker.series.finalize()
            entry = {
                "completed": worker.completed,
                "committed_integral": worker.series.integral,
                "committed_grid": worker.series.grid,
            }
            active = getattr(worker, "active_series", None)
            if active is not None:
                active.finalize()
                entry["active_integral"] = active.integral
                entry["active_grid"] = active.grid
                entry["cold_starts"] = worker.cold_starts
            workers.append(entry)
        return {"workers": workers, "events": self.env._seq}


class ClassicShardSim:
    """The classic-kernel formulation of a shard (wall-clock baseline).

    Same interface as :class:`ShardSim`, but every delivery runs as a
    generator process acquiring a :class:`~repro.sim.resources.Resource`
    core slot — the pre-sharding simulation idiom
    (:class:`~repro.trace.replay.DandelionTraceWorker`).  Exists so the
    trace-scale benchmark measures the lean kernel against the real
    alternative, and so the invariance suite can pin the two kernels to
    byte-identical KPIs.  Dandelion platform only.
    """

    __slots__ = ("env", "workers", "worker_indices", "cores", "_by_global")

    def __init__(self, worker_indices, config: dict):
        if config["platform"] != PLATFORM_DANDELION:
            raise ValueError("classic engine models the dandelion platform only")
        self.env = Environment()
        self.worker_indices = tuple(worker_indices)
        self.cores = config["cores_per_worker"]
        self.workers = [
            _ClassicDandelionWorker(
                self.env, self.cores, config["creation_seconds"],
                config["memory_of"], config["duration_seconds"], config["grid_step"],
            )
            for _ in self.worker_indices
        ]
        self._by_global = {
            index: worker for index, worker in zip(self.worker_indices, self.workers)
        }

    def run_window(self, records, end: float) -> None:
        env = self.env
        by_global = self._by_global
        for delivery, worker, fn_index, duration, arrival in records:
            env.process(by_global[worker].serve(delivery, fn_index, duration, arrival))
        env.run(until=end)

    drain_latencies = ShardSim.drain_latencies
    final_summary = ShardSim.final_summary

    def outstanding(self) -> list[int]:
        return [w.outstanding for w in self.workers]

    @property
    def events(self) -> int:
        return self.env._seq


class _ClassicDandelionWorker:
    """Generator+Resource restatement of :class:`_LeanDandelionWorker`."""

    __slots__ = (
        "env", "cores", "creation", "memory_of", "committed",
        "latencies", "series", "completed", "outstanding",
    )

    def __init__(self, env, cores, creation_seconds, memory_of, duration, grid_step):
        self.env = env
        self.cores = Resource(env, capacity=cores)
        self.creation = creation_seconds
        self.memory_of = memory_of
        self.committed = 0
        self.latencies: list[float] = []
        self.series = _StepSeries(duration, grid_step)
        self.completed = 0
        self.outstanding = 0

    def serve(self, delivery, fn_index, duration, arrival):
        env = self.env
        delay = delivery - env._now
        if delay > 0:
            yield env.timeout(delay)
        self.outstanding += 1
        memory = self.memory_of[fn_index]
        with self.cores.acquire() as slot:
            yield slot
            self.committed += memory
            self.series.record(env._now, self.committed)
            yield env.timeout(self.creation + duration)
            self.committed -= memory
            self.series.record(env._now, self.committed)
        self.latencies.append(env._now - arrival)
        self.completed += 1
        self.outstanding -= 1
