"""Conservative time-window coordinator for the sharded simulator.

Topology is hub-and-spoke: shards never talk to each other, only to
the coordinator, and only at window barriers.  Each window of length
``window_seconds`` proceeds as

1. the coordinator pulls the window's arrivals from the trace stream
   and routes them through the :class:`~repro.dispatcher.windowed.WindowedRouter`
   against the fleet view merged from the *previous* barrier's reports;
2. per-shard delivery batches go out as v2 wire-format blobs
   (:mod:`.messages`); every delivery time already includes the
   dispatch delay, the conservative lookahead — nothing the dispatcher
   decides in this window can take effect inside a shard earlier than
   that, and shards cannot affect each other at all, so any window
   length is causally safe;
3. each shard ingests its batch, runs its kernel to the window end,
   and reports outstanding counts plus the window's completion
   latencies;
4. the coordinator merges the reports (global worker order, see
   :class:`~repro.cluster.sharding.ShardPlan`) and the loop repeats
   until the stream is exhausted and every routed invocation has
   completed.

The window length therefore trades snapshot freshness (routing acts on
state ``window_seconds`` stale, exactly like a real cluster manager
polling worker state) against barrier overhead — it is a *model*
parameter, identical across shard counts, which is why KPIs are
invariant to sharding.  Determinism rules are spelled out in
docs/simulation.md.

Two executors share one byte path: :class:`SerialExecutor` steps every
shard in-process (the N=1 default and the no-multiprocessing
fallback), :class:`ProcessExecutor` runs one OS process per shard
connected by pipes.  Both round-trip the same blobs through
:mod:`.messages`, so invariance tests on the serial executor pin the
codec the process executor uses.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from array import array
from dataclasses import dataclass, field
from typing import Optional

from ...cluster.sharding import ShardPlan
from ...dispatcher.windowed import WindowedRouter
from ..metrics import percentile
from .messages import (
    decode_final_report,
    decode_window_batch,
    decode_window_report,
    encode_final_report,
    encode_window_batch,
    encode_window_report,
)
from .shard import PLATFORM_DANDELION, ClassicShardSim, ShardSim

__all__ = [
    "ShardedConfig",
    "ShardedReplayReport",
    "SerialExecutor",
    "ProcessExecutor",
    "run_sharded_replay",
]


@dataclass
class ShardedConfig:
    """Fleet, platform, and synchronization parameters for one run."""

    workers: int
    cores_per_worker: int = 16
    shards: int = 1
    window_seconds: float = 0.5
    dispatch_delay_seconds: float = 0.0005
    platform: str = PLATFORM_DANDELION
    policy: str = "least_loaded"
    seed: int = 0
    grid_step: float = 60.0
    engine: str = "lean"            # "lean" | "classic"
    executor: str = "auto"          # "auto" | "serial" | "process"
    # Dandelion platform: sandbox-creation seconds (process backend).
    creation_seconds: float = 0.001
    # FaaS platform: Firecracker-snapshot + Knative keep-alive model
    # (defaults mirror trace.replay.replay_on_faas / baselines.specs).
    guest_overhead_bytes: int = 40 * 1024 * 1024
    cold_start_seconds: float = 0.812
    hot_start_seconds: float = 0.0014
    paging_seconds_per_mib: float = 0.00012
    compute_slowdown: float = 1.05
    keep_alive_seconds: float = 75.0

    def shard_config(self, duration_seconds: float) -> dict:
        """The per-shard kernel parameters (sent once at init)."""
        return {
            "cores_per_worker": self.cores_per_worker,
            "duration_seconds": duration_seconds,
            "grid_step": self.grid_step,
            "platform": self.platform,
            "creation_seconds": self.creation_seconds,
            "guest_overhead_bytes": self.guest_overhead_bytes,
            "cold_start_seconds": self.cold_start_seconds,
            "hot_start_seconds": self.hot_start_seconds,
            "paging_seconds_per_mib": self.paging_seconds_per_mib,
            "compute_slowdown": self.compute_slowdown,
            "keep_alive_seconds": self.keep_alive_seconds,
        }


@dataclass
class ShardedReplayReport:
    """Merged results of one sharded replay.

    Everything in :meth:`summary` is a pure function of the trace and
    the :class:`ShardedConfig` model parameters — byte-identical across
    shard counts and executors.  Wall-clock observability (stall times,
    barrier waits, wall seconds) lives in separate fields and in
    :attr:`shard_stats`, and never feeds the summary.
    """

    platform: str
    workers: int
    cores_per_worker: int
    duration_seconds: float
    grid_step: float
    routed: int
    completed: int
    cold_starts: int
    events: int
    windows: int
    committed_grid: list
    active_grid: Optional[list]
    committed_mean_bytes: float
    active_mean_bytes: Optional[float]
    latencies: list = field(repr=False)
    # Observability (excluded from summary): one dict per shard with
    # events, windows, sync-barrier stall seconds, plus coordinator
    # wall clock and per-shard barrier waits.
    shard_stats: list = field(default_factory=list)
    wall_seconds: float = 0.0
    executor_mode: str = ""

    def latency_percentile(self, q: float) -> float:
        return percentile(self.latencies, q)

    def summary(self) -> dict:
        """Deterministic KPI record (shard-count/executor invariant)."""
        n = len(self.latencies)
        return {
            "platform": self.platform,
            "workers": self.workers,
            "cores_per_worker": self.cores_per_worker,
            "routed": self.routed,
            "completed": self.completed,
            "cold_starts": self.cold_starts,
            "events": self.events,
            "windows": self.windows,
            "latency_p50": self.latency_percentile(50) if n else 0.0,
            "latency_p99": self.latency_percentile(99) if n else 0.0,
            "latency_mean": (sum(self.latencies) / n) if n else 0.0,
            "committed_mean_bytes": self.committed_mean_bytes,
            "active_mean_bytes": self.active_mean_bytes,
            "committed_grid": list(self.committed_grid),
            "active_grid": list(self.active_grid) if self.active_grid is not None else None,
        }


def _window_reply(sim, blob, stall_seconds: float) -> "tuple[bytes, bool]":
    """Serve one coordinator message on a shard; shared by executors."""
    index, end, finish, records = decode_window_batch(blob)
    if finish:
        summary = sim.final_summary()
        summary["stall_seconds"] = stall_seconds
        return encode_final_report(summary), True
    sim.run_window(records, end)
    report = encode_window_report(
        index, end, sim.outstanding(), sim.drain_latencies(), sim.events, stall_seconds
    )
    return report, False


def _engine_class(engine: str):
    if engine == "lean":
        return ShardSim
    if engine == "classic":
        return ClassicShardSim
    raise ValueError(f"unknown engine {engine!r}")


class SerialExecutor:
    """All shards stepped in one process (zero barrier stall).

    ``send``/``receive`` mirror the process executor's split so the
    coordinator loop is executor-agnostic; here ``send`` just parks the
    blobs and ``receive`` does the work.
    """

    __slots__ = ("_sims", "_inbox")

    def __init__(self, plan: ShardPlan, shard_config: dict, engine: str):
        cls = _engine_class(engine)
        self._sims = [
            cls(plan.workers_of(shard), shard_config)
            for shard in range(plan.shard_count)
        ]
        self._inbox: list = []

    def send(self, blobs) -> None:
        self._inbox = blobs

    def receive(self):
        replies = [
            _window_reply(sim, blob, 0.0)[0]
            for sim, blob in zip(self._sims, self._inbox)
        ]
        self._inbox = []
        return replies, [0.0] * len(replies)

    def finish(self):
        fin = encode_window_batch(0, 0.0, b"", finish=True)
        return [_window_reply(sim, fin, 0.0)[0] for sim in self._sims]

    def close(self):
        self._sims = []


def _shard_process_main(conn) -> None:
    """Entry point of one shard worker process."""
    try:
        init = conn.recv()
        sim = _engine_class(init["engine"])(init["worker_indices"], init["config"])
        stall = 0.0
        while True:
            begin = time.perf_counter()
            blob = conn.recv_bytes()
            stall += time.perf_counter() - begin
            reply, finished = _window_reply(sim, blob, stall)
            conn.send_bytes(reply)
            if finished:
                break
    finally:
        conn.close()


class ProcessExecutor:
    """One OS process per shard, pipes for window traffic."""

    __slots__ = ("_conns", "_procs")

    def __init__(self, plan: ShardPlan, shard_config: dict, engine: str):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._conns = []
        self._procs = []
        try:
            for shard in range(plan.shard_count):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_process_main, args=(child,), daemon=True
                )
                proc.start()
                child.close()
                parent.send(
                    {
                        "engine": engine,
                        "worker_indices": plan.workers_of(shard),
                        "config": shard_config,
                    }
                )
                self._conns.append(parent)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    def send(self, blobs) -> None:
        for conn, blob in zip(self._conns, blobs):
            conn.send_bytes(blob)

    def receive(self):
        replies = []
        waits = []
        for conn in self._conns:
            begin = time.perf_counter()
            replies.append(conn.recv_bytes())
            waits.append(time.perf_counter() - begin)
        return replies, waits

    def finish(self):
        fin = encode_window_batch(0, 0.0, b"", finish=True)
        for conn in self._conns:
            conn.send_bytes(fin)
        return [conn.recv_bytes() for conn in self._conns]

    def close(self):
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []


def _available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_sharded_replay(trace, config: ShardedConfig) -> ShardedReplayReport:
    """Replay ``trace`` (a :class:`~repro.trace.stream.StreamedTrace`)."""
    memory_of = trace.memory_bytes()
    duration = trace.duration_seconds
    plan = ShardPlan(config.workers, config.shards)
    router = WindowedRouter(plan, config.policy, config.seed)
    shard_config = config.shard_config(duration)
    shard_config["memory_of"] = memory_of
    mode = config.executor
    if mode == "auto":
        # Shard processes only help when there are spare cores to run
        # them on; on a single-CPU host the barrier ping-pong costs more
        # than the parallelism returns, so fall back to serial stepping
        # (same byte path, same results — that's the invariance
        # guarantee).
        mode = (
            "serial"
            if plan.shard_count == 1 or _available_cpus() == 1
            else "process"
        )
    executor = (
        SerialExecutor(plan, shard_config, config.engine)
        if mode == "serial"
        else ProcessExecutor(plan, shard_config, config.engine)
    )
    window = config.window_seconds
    dispatch_delay = config.dispatch_delay_seconds
    begin_wall = time.perf_counter()
    try:
        stream = trace.iter_invocations()
        pending = next(stream, None)
        routed = 0
        completed = 0
        windows = 0
        latency_items: list = []
        events_of = [0] * plan.shard_count
        stall_of = [0.0] * plan.shard_count
        barrier_wait = [0.0] * plan.shard_count
        # Window 0's arrivals; each iteration then pulls the *next*
        # window's arrivals between send and receive, so trace
        # generation overlaps shard compute under the process executor.
        arrivals = []
        while pending is not None and pending[0] < window:
            arrivals.append(pending)
            pending = next(stream, None)
        while True:
            end = (windows + 1) * window
            routed += len(arrivals)
            batches = router.route_window(arrivals, dispatch_delay)
            executor.send(
                [encode_window_batch(windows, end, batch) for batch in batches]
            )
            next_end = end + window
            arrivals = []
            while pending is not None and pending[0] < next_end:
                arrivals.append(pending)
                pending = next(stream, None)
            replies, waits = executor.receive()
            per_shard_outstanding = []
            for shard, reply in enumerate(replies):
                _index, outstanding, item, events, stall = decode_window_report(reply)
                per_shard_outstanding.append(outstanding)
                if item.size:
                    latency_items.append(item)
                    completed += item.size // 8
                events_of[shard] = events
                stall_of[shard] = stall
                barrier_wait[shard] += waits[shard]
            router.refresh(per_shard_outstanding)
            windows += 1
            if (
                pending is None
                and not arrivals
                and end >= duration
                and completed == routed
            ):
                break
        finals = [decode_final_report(blob) for blob in executor.finish()]
    finally:
        executor.close()
    wall_seconds = time.perf_counter() - begin_wall

    # Merge per-worker aggregates in global worker order: sums of ints
    # are exact and float additions happen in one canonical order, so
    # the merged KPIs are identical for every shard count.
    worker_entries = plan.merge([final["workers"] for final in finals])
    grid_points = len(worker_entries[0]["committed_grid"])
    committed_grid = [0] * grid_points
    committed_integral = 0.0
    has_active = "active_grid" in worker_entries[0]
    active_grid = [0] * grid_points if has_active else None
    active_integral = 0.0
    cold_starts = 0
    merged_completed = 0
    for entry in worker_entries:
        for i, value in enumerate(entry["committed_grid"]):
            committed_grid[i] += value
        committed_integral += entry["committed_integral"]
        merged_completed += entry["completed"]
        if has_active:
            for i, value in enumerate(entry["active_grid"]):
                active_grid[i] += value
            active_integral += entry["active_integral"]
            cold_starts += entry["cold_starts"]

    latencies = array("d")
    for item in latency_items:
        latencies.frombytes(item.data)
    sorted_latencies = sorted(latencies)

    shard_stats = [
        {
            "shard": shard,
            "workers": len(plan.workers_of(shard)),
            "events": final["events"],
            "windows": windows,
            "stall_seconds": final.get("stall_seconds", stall_of[shard]),
            "barrier_wait_seconds": barrier_wait[shard],
        }
        for shard, final in enumerate(finals)
    ]

    return ShardedReplayReport(
        platform=config.platform,
        workers=config.workers,
        cores_per_worker=config.cores_per_worker,
        duration_seconds=duration,
        grid_step=config.grid_step,
        routed=routed,
        completed=merged_completed,
        cold_starts=cold_starts,
        events=sum(events_of),
        windows=windows,
        committed_grid=committed_grid,
        active_grid=active_grid,
        committed_mean_bytes=committed_integral / duration,
        active_mean_bytes=(active_integral / duration) if has_active else None,
        latencies=sorted_latencies,
        shard_stats=shard_stats,
        wall_seconds=wall_seconds,
        executor_mode=mode,
    )
