"""Sharded parallel simulation: conservative time-window DES.

The cluster simulation is partitioned across shards of workers — one
event kernel (:class:`~repro.sim.core.Environment`) per shard — and
synchronized by conservative time windows at the cluster-manager
boundary.  See docs/simulation.md ("Sharded execution") for the window
and lookahead derivation, the determinism rules, and when N=1 is the
faster choice.

Public surface:

* :func:`run_sharded_replay` — drive a :class:`~repro.trace.stream.StreamedTrace`
  through a sharded fleet and return a :class:`ShardedReplayReport`.
* :class:`ShardedConfig` — fleet/platform/window parameters.
* ``messages`` — the v2 wire-format window batch/report codec.
"""

from .coordinator import ShardedConfig, ShardedReplayReport, run_sharded_replay

__all__ = ["ShardedConfig", "ShardedReplayReport", "run_sharded_replay"]
