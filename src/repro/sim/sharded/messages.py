"""Per-window message codec between coordinator and shards.

Window traffic rides the v2 zero-parse wire format
(:func:`~repro.data.context.serialize_sets` /
:func:`~repro.data.lazy.parse_sets_lazy`): each message is one blob of
named sets whose payloads are packed fixed-width records.  The receiver
indexes the blob in O(sets) and touches only the items it needs that
window — the coordinator, for example, decodes every report's state
item at the barrier (routing needs the outstanding counts) but leaves
the ``latencies`` payload as an untouched lazy view until the end of
the run, so results cross the shard boundary at O(1) per window until
someone actually looks at them.

The hot-path messages are deliberately *flat* — one set, one or two
items, accessed positionally — because the codec runs twice per shard
per window: name-keyed lookups and multi-set footers are measurable at
2400 windows x shards (that is what the zero-parse format's positional
access is for).

Both executors (in-process serial and multiprocessing) round-trip the
same blobs through the same codec, so the byte path is identical and
codec behaviour is pinned by the shard-count invariance suite.

Record layouts (all little-endian, no padding):

* batch item (set ``window``): ``(index u4, end f8, flags u4)`` span
  followed by packed :data:`~repro.cluster.sharding.INVOCATION` records
  ``(delivery_time f8, worker u4, fn_index u4, duration f8, arrival f8)``
  exactly as the dispatcher emitted them;
* report state item (set ``report``): ``(index u4, end f8, events u8,
  stall_seconds f8)`` followed by one outstanding count ``u4`` per
  local worker, shard worker order;
* report latencies item: ``f8`` per completion of the window,
  completion order.
"""

from __future__ import annotations

import json
import struct

from ...cluster.sharding import INVOCATION
from ...data.context import serialize_sets
from ...data.items import DataItem, DataSet
from ...data.lazy import parse_sets_lazy

__all__ = [
    "INVOCATION",
    "encode_window_batch",
    "decode_window_batch",
    "encode_window_report",
    "decode_window_report",
    "decode_latencies",
    "encode_final_report",
    "decode_final_report",
]

_WINDOW = struct.Struct("<IdI")   # batch span: window index, window end, flags
_STATE = struct.Struct("<IdQd")   # report: index, end, events so far, stall so far

FLAG_FINISH = 1  # after this window, send the final report and exit


def _pack_f8(values) -> bytes:
    return struct.pack(f"<{len(values)}d", *values)


def encode_window_batch(index: int, end: float, payload, finish: bool = False) -> bytes:
    """One coordinator→shard window: control span plus routed arrivals.

    ``payload`` is the wire-ready batch of packed
    :data:`~repro.cluster.sharding.INVOCATION` records exactly as the
    dispatcher emitted it
    (:meth:`~repro.dispatcher.windowed.WindowedRouter.route_window`).
    """
    flags = FLAG_FINISH if finish else 0
    return serialize_sets(
        [DataSet("window", [DataItem("batch", _WINDOW.pack(index, end, flags) + payload)])]
    )


def decode_window_batch(blob):
    """→ ``(index, end, finish, records)``; records is a list of tuples."""
    data = parse_sets_lazy(blob)[0][0].data
    index, end, flags = _WINDOW.unpack_from(data, 0)
    records = list(INVOCATION.iter_unpack(memoryview(data)[_WINDOW.size:]))
    return index, end, bool(flags & FLAG_FINISH), records


def encode_window_report(
    index: int, end: float, outstanding, latencies, events: int, stall_seconds: float
) -> bytes:
    """One shard→coordinator barrier report."""
    state = _STATE.pack(index, end, events, stall_seconds) + struct.pack(
        f"<{len(outstanding)}I", *outstanding
    )
    return serialize_sets(
        [
            DataSet(
                "report",
                [DataItem("state", state), DataItem("latencies", _pack_f8(latencies))],
            )
        ]
    )


def decode_window_report(blob):
    """→ ``(index, outstanding, latency_item, events, stall_seconds)``.

    ``latency_item`` is the *lazy* item view — callers that only need
    the barrier state never pay for the payload copy.
    """
    report = parse_sets_lazy(blob)[0]
    state = report[0].data
    index, _end, events, stall = _STATE.unpack_from(state, 0)
    count = (len(state) - _STATE.size) // 4
    outstanding = list(struct.unpack_from(f"<{count}I", state, _STATE.size))
    return index, outstanding, report[1], events, stall


def decode_latencies(item) -> "tuple[float, ...]":
    """Materialize one report's latency payload (touched at end of run)."""
    return struct.unpack(f"<{item.size // 8}d", item.data)


def encode_final_report(summary: dict) -> bytes:
    """End-of-run per-shard aggregates (JSON: cold path, read once)."""
    payload = json.dumps(summary, sort_keys=True).encode("utf-8")
    return serialize_sets([DataSet("final", [DataItem("summary", payload)])])


def decode_final_report(blob) -> dict:
    return json.loads(parse_sets_lazy(blob)[0][0].data)
