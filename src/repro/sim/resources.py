"""Shared resources for simulation processes.

Provides the queueing primitives the platforms are built from:

``Resource``
    A counted resource (e.g. a pool of CPU cores) with a FIFO wait
    queue.  Used via ``req = resource.request(); yield req; ...;
    resource.release(req)`` or the :meth:`Resource.acquire` helper.

``Store``
    An unbounded (or bounded) FIFO buffer of items with blocking
    ``get`` and ``put``.  Engine task queues are Stores.

``PriorityStore``
    A Store whose items are retrieved lowest-priority-value first.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Optional

from .core import Environment, Event, SimulationError
from .core import _PROCESSED

__all__ = ["Resource", "Request", "Store", "PriorityStore"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        if not resource._queue and len(resource._users) < resource._capacity:
            # Fast path: a slot is free and nobody is ahead of us, so
            # the claim is granted synchronously — the requester
            # continues without a trip through the event heap.
            resource._users.append(self)
            self._value = self
            self._state = _PROCESSED
            return
        resource._queue.append(self)
        resource._trigger()

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Resource:
    """A counted resource with FIFO granting.

    ``capacity`` slots exist; requests beyond capacity wait in arrival
    order.  ``count`` reports slots currently held.
    """

    __slots__ = ("env", "_capacity", "_queue", "_users")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self._capacity = capacity
        self._queue: deque[Request] = deque()
        self._users: list[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that was never granted") from None
        self._trigger()

    def acquire(self):
        """Context-manager style helper for use inside processes::

            with resource.acquire() as req:
                yield req
                ...
        """
        return _ResourceContext(self)

    def resize(self, capacity: int) -> None:
        """Change capacity; newly freed slots are granted immediately.

        Shrinking below the in-use count does not preempt holders; the
        resource simply grants no new slots until usage drops.
        """
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self._capacity = capacity
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed(request)


class _ResourceContext:
    __slots__ = ("resource", "request")

    def __init__(self, resource: Resource):
        self.resource = resource
        self.request: Optional[Request] = None

    def __enter__(self) -> Request:
        self.request = self.resource.request()
        return self.request

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self.request is not None
        if self.request.processed:
            self.resource.release(self.request)
        else:
            self.request.cancel()


class Store:
    """A FIFO buffer with blocking ``get``/``put``.

    ``capacity`` bounds the number of stored items (``inf`` by
    default).  ``get`` returns an event carrying the item.
    """

    __slots__ = ("env", "capacity", "_items", "_getters", "_putters")

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """Snapshot of buffered items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Add ``item``; the event fires once the item is accepted."""
        event = Event(self.env)
        if not self._putters and len(self) < self.capacity:
            # Fast path: the item is accepted immediately, so the put
            # event is born processed — no heap round trip.  Waiting
            # getters are still woken through the heap (FIFO order).
            self._push_item(item)
            event._value = item
            event._state = _PROCESSED
            if self._getters:
                self._dispatch()
            return event
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Take the oldest item; the event fires carrying the item."""
        event = Event(self.env)
        if not self._getters and len(self):
            # Fast path: an item is ready and nobody is ahead of us —
            # hand it over synchronously.
            event._value = self._pop_item()
            event._state = _PROCESSED
            if self._putters:
                self._dispatch()
            return event
        self._getters.append(event)
        self._dispatch()
        return event

    def _pop_item(self) -> Any:
        return self._items.popleft()

    def _push_item(self, item: Any) -> None:
        self._items.append(item)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self._items) < self.capacity:
                event, item = self._putters.popleft()
                self._push_item(item)
                event.succeed(item)
                progressed = True
            while self._getters and self._items:
                event = self._getters.popleft()
                event.succeed(self._pop_item())
                progressed = True


class PriorityStore(Store):
    """A Store retrieving the lowest-priority item first.

    Items are ``(priority, item)`` tuples on ``put``; ``get`` returns
    just the item.  Ties are broken by insertion order.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: list[tuple[Any, int, Any]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list[Any]:
        return [item for _p, _s, item in sorted(self._heap)]

    def put(self, item: Any, priority: Any = 0) -> Event:  # type: ignore[override]
        event = Event(self.env)
        if not self._putters and len(self) < self.capacity:
            self._push_item((priority, item))
            event._value = item
            event._state = _PROCESSED
            if self._getters:
                self._dispatch()
            return event
        self._putters.append((event, (priority, item)))
        self._dispatch()
        return event

    def _push_item(self, pair: Any) -> None:
        priority, item = pair
        heapq.heappush(self._heap, (priority, next(self._seq), item))

    def _pop_item(self) -> Any:
        _priority, _seq, item = heapq.heappop(self._heap)
        return item

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self._heap) < self.capacity:
                event, pair = self._putters.popleft()
                self._push_item(pair)
                event.succeed(pair[1])
                progressed = True
            while self._getters and self._heap:
                event = self._getters.popleft()
                event.succeed(self._pop_item())
                progressed = True
