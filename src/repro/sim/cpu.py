"""Processor-sharing CPU model (virtual-time implementation).

Traditional FaaS sandboxes are multiplexed by the OS scheduler: when
more runnable threads exist than cores, everyone slows down and pays
context-switch overhead (§7.5 motivates Dandelion's run-to-completion
design with exactly this effect).  :class:`ProcessorSharingCpu` models
an ``n``-core machine under fair time-slicing: each of ``k`` active
jobs progresses at rate ``min(1, n/k)`` cores, recomputed whenever a
job arrives or departs, with an optional per-reschedule overhead
standing in for context-switch cost.

Dandelion's own engines do NOT use this model — they are dedicated
cores with run-to-completion — which is precisely the comparison
Fig 7 makes.

Implementation: the classic *virtual-time* PS algorithm.  A single
clock ``V`` tracks the service attained by any job continuously present
(all jobs attain service at the same rate under PS, so one clock covers
everyone).  A job arriving when the clock reads ``V_a`` with ``w``
seconds of work finishes when the clock reaches ``F = V_a + w``; jobs
live in a min-heap keyed on ``F``.  A membership change only advances
``V`` (one multiply) and pushes/pops heap entries — O(log n) — instead
of rescanning every queued job's remaining work, which made loaded
baselines O(n²) in queue length.  Completion timers are plain
:class:`~repro.sim.core.Timeout` events with a direct callback, re-armed
lazily: an arrival that pushes the next completion later keeps the
already-armed (now early) timer, which simply re-arms when it fires, so
arrivals do not grow the event heap.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

from .core import Environment, Event, Timeout

__all__ = ["ProcessorSharingCpu"]

# Jobs whose finish tag is within this many attained-service seconds of
# the virtual clock are considered complete (absorbs float rounding in
# the timer delay round-trip).
_COMPLETION_EPSILON = 1e-12


class _Job:
    __slots__ = ("start_v", "event")

    def __init__(self, start_v: float, event: Event):
        self.start_v = start_v
        self.event = event


class ProcessorSharingCpu:
    """An n-core CPU shared fairly among active jobs."""

    __slots__ = (
        "env",
        "cores",
        "switch_overhead_seconds",
        "oversubscribed_efficiency",
        "_heap",
        "_seq",
        "_vtime",
        "_last_update",
        "_timer",
        "_timer_deadline",
        "jobs_completed",
        "_done_work",
    )

    def __init__(
        self,
        env: Environment,
        cores: int,
        switch_overhead_seconds: float = 0.0,
        oversubscribed_efficiency: float = 1.0,
    ):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if not 0.0 < oversubscribed_efficiency <= 1.0:
            raise ValueError("oversubscribed_efficiency must be in (0, 1]")
        self.env = env
        self.cores = cores
        self.switch_overhead_seconds = switch_overhead_seconds
        # Fraction of CPU actually delivered to jobs while the run
        # queue exceeds the core count — the rest is lost to context
        # switches and cache pollution.
        self.oversubscribed_efficiency = oversubscribed_efficiency
        # Min-heap of (finish_v, seq, job); seq breaks finish-tag ties
        # in arrival order so completion order stays deterministic.
        self._heap: list[tuple[float, int, _Job]] = []
        self._seq = 0
        self._vtime = 0.0          # attained service per job so far (V)
        self._last_update = env.now
        self._timer: Optional[Timeout] = None
        self._timer_deadline = float("inf")
        self.jobs_completed = 0
        self._done_work = 0.0      # total attained service of completed jobs

    @property
    def active_jobs(self) -> int:
        return len(self._heap)

    @property
    def current_rate(self) -> float:
        """Per-job progress rate in cores (1.0 = a dedicated core)."""
        k = len(self._heap)
        if k <= self.cores:
            return 1.0
        return (self.cores / k) * self.oversubscribed_efficiency

    @property
    def busy_core_seconds(self) -> float:
        """Total attained service: completed work plus in-flight progress."""
        attained = self._done_work
        if self._heap:
            v = self._vtime
            elapsed = self.env.now - self._last_update
            if elapsed > 0:
                v += elapsed * self.current_rate
            for _finish_v, _seq, job in self._heap:
                attained += v - job.start_v
        return attained

    def consume(self, cpu_seconds: float) -> Event:
        """Submit a job needing ``cpu_seconds`` of one core; returns its
        completion event."""
        if cpu_seconds < 0:
            raise ValueError("cpu_seconds must be non-negative")
        event = self.env.event()
        if cpu_seconds == 0:
            event.succeed()
            return event
        self._advance_vtime()
        # Each membership change forces a round of context switches on
        # oversubscribed cores.
        work = cpu_seconds
        if len(self._heap) >= self.cores and self.switch_overhead_seconds:
            work += self.switch_overhead_seconds
        self._seq += 1
        heappush(self._heap, (self._vtime + work, self._seq, _Job(self._vtime, event)))
        self._arm_timer()
        return event

    # -- internals -----------------------------------------------------------

    def _advance_vtime(self) -> None:
        """Advance the virtual clock to the current instant."""
        now = self.env.now
        heap = self._heap
        if heap:
            elapsed = now - self._last_update
            if elapsed > 0:
                k = len(heap)
                cores = self.cores
                rate = 1.0 if k <= cores else (cores / k) * self.oversubscribed_efficiency
                self._vtime += elapsed * rate
        self._last_update = now

    def _arm_timer(self) -> None:
        """Ensure a timer fires no later than the next completion.

        A pending timer that fires *early* is harmless — its callback
        finds no finished job and re-arms — so arrivals that push the
        next completion later (the common case: rate drops, finish tags
        move out) reuse the pending timer instead of allocating a new
        event.  Only an arrival that pulls the next completion *earlier*
        (a short job under-cutting the current heap top) arms a fresh
        timer; the superseded one is skipped by identity when it fires.
        """
        heap = self._heap
        if not heap:
            self._timer = None
            self._timer_deadline = float("inf")
            return
        k = len(heap)
        cores = self.cores
        rate = 1.0 if k <= cores else (cores / k) * self.oversubscribed_efficiency
        delay = (heap[0][0] - self._vtime) / rate
        if delay < 0.0:
            delay = 0.0
        deadline = self.env.now + delay
        if self._timer is not None and self._timer_deadline <= deadline:
            return
        self._timer = self.env.timeout(delay)
        self._timer_deadline = deadline
        self._timer.callbacks.append(self._on_timer)

    def _on_timer(self, timeout: Event) -> None:
        if timeout is not self._timer:
            return  # superseded by a newer, earlier timer
        self._timer = None
        self._timer_deadline = float("inf")
        self._advance_vtime()
        heap = self._heap
        threshold = self._vtime + _COMPLETION_EPSILON
        finished: list[_Job] = []
        while heap and heap[0][0] <= threshold:
            finish_v, _seq, job = heappop(heap)
            self._done_work += finish_v - job.start_v
            finished.append(job)
        for job in finished:
            self.jobs_completed += 1
            job.event.succeed()
        self._arm_timer()
