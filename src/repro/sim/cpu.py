"""Processor-sharing CPU model.

Traditional FaaS sandboxes are multiplexed by the OS scheduler: when
more runnable threads exist than cores, everyone slows down and pays
context-switch overhead (§7.5 motivates Dandelion's run-to-completion
design with exactly this effect).  :class:`ProcessorSharingCpu` models
an ``n``-core machine under fair time-slicing: each of ``k`` active
jobs progresses at rate ``min(1, n/k)`` cores, recomputed whenever a
job arrives or departs, with an optional per-reschedule overhead
standing in for context-switch cost.

Dandelion's own engines do NOT use this model — they are dedicated
cores with run-to-completion — which is precisely the comparison
Fig 7 makes.
"""

from __future__ import annotations

from typing import Optional

from .core import Environment, Event

__all__ = ["ProcessorSharingCpu"]


class _Job:
    __slots__ = ("remaining", "event", "last_update")

    def __init__(self, work: float, event: Event, now: float):
        self.remaining = work
        self.event = event
        self.last_update = now


class ProcessorSharingCpu:
    """An n-core CPU shared fairly among active jobs."""

    def __init__(
        self,
        env: Environment,
        cores: int,
        switch_overhead_seconds: float = 0.0,
        oversubscribed_efficiency: float = 1.0,
    ):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if not 0.0 < oversubscribed_efficiency <= 1.0:
            raise ValueError("oversubscribed_efficiency must be in (0, 1]")
        self.env = env
        self.cores = cores
        self.switch_overhead_seconds = switch_overhead_seconds
        # Fraction of CPU actually delivered to jobs while the run
        # queue exceeds the core count — the rest is lost to context
        # switches and cache pollution.
        self.oversubscribed_efficiency = oversubscribed_efficiency
        self._jobs: list[_Job] = []
        self._timer: Optional[Event] = None
        self._timer_generation = 0
        self.jobs_completed = 0
        self.busy_core_seconds = 0.0

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    @property
    def current_rate(self) -> float:
        """Per-job progress rate in cores (1.0 = a dedicated core)."""
        if not self._jobs:
            return 1.0
        if len(self._jobs) <= self.cores:
            return 1.0
        return (self.cores / len(self._jobs)) * self.oversubscribed_efficiency

    def consume(self, cpu_seconds: float) -> Event:
        """Submit a job needing ``cpu_seconds`` of one core; returns its
        completion event."""
        if cpu_seconds < 0:
            raise ValueError("cpu_seconds must be non-negative")
        event = self.env.event()
        if cpu_seconds == 0:
            event.succeed()
            return event
        self._advance()
        # Each membership change forces a round of context switches on
        # oversubscribed cores.
        work = cpu_seconds
        if len(self._jobs) >= self.cores and self.switch_overhead_seconds:
            work += self.switch_overhead_seconds
        self._jobs.append(_Job(work, event, self.env.now))
        self._reschedule()
        return event

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        """Account progress made since the last membership change."""
        if not self._jobs:
            return
        rate = self.current_rate
        now = self.env.now
        for job in self._jobs:
            elapsed = now - job.last_update
            progressed = elapsed * rate
            job.remaining = max(0.0, job.remaining - progressed)
            job.last_update = now
            self.busy_core_seconds += progressed

    def _reschedule(self) -> None:
        """Arm a timer for the earliest completion under the current rate."""
        self._timer_generation += 1
        generation = self._timer_generation
        if not self._jobs:
            return
        rate = self.current_rate
        soonest = min(job.remaining for job in self._jobs)
        delay = soonest / rate if rate > 0 else float("inf")
        self.env.process(self._fire_after(delay, generation))

    def _fire_after(self, delay: float, generation: int):
        yield self.env.timeout(delay)
        if generation != self._timer_generation:
            return  # superseded by a newer membership change
        self._advance()
        finished = [job for job in self._jobs if job.remaining <= 1e-12]
        if finished:
            self._jobs = [job for job in self._jobs if job.remaining > 1e-12]
            for job in finished:
                self.jobs_completed += 1
                job.event.succeed()
        self._reschedule()
