"""Discrete-event simulation kernel.

This module implements a small, self-contained process-based
discrete-event simulator in the style of SimPy.  Every platform in the
reproduction (Dandelion worker nodes, Firecracker hosts, the Knative
autoscaler, the simulated network) runs on top of this kernel, so that
microsecond-scale timing behaviour from the paper can be modelled
faithfully even though the host is Python.

The public surface is:

``Environment``
    Owns the virtual clock and the event queue.  ``env.process(gen)``
    turns a generator into a running :class:`Process`; ``env.run()``
    drives the simulation.

``Event``
    One-shot occurrence with a value.  Trigger with :meth:`Event.succeed`
    or :meth:`Event.fail`.

``Timeout``
    Event that fires after a fixed delay of virtual time.

``Process``
    A running generator.  Processes *yield* events to wait on them; a
    process is itself an event that fires when the generator returns.

``AllOf`` / ``AnyOf``
    Composite conditions over several events.

Time is a float; the unit is **seconds** throughout the code base.

Fast-path invariants (everything downstream schedules millions of
events per experiment, so the kernel keeps allocations minimal):

- every event class declares ``__slots__``; subclasses defined outside
  this module may omit it (they then carry a ``__dict__``, which is
  fine — only the kernel's own classes need to stay lean);
- ``Timeout``/``Initialize`` construction and ``succeed``/``fail`` push
  straight onto the environment heap without intermediate helpers;
- heap entries are ``(time, priority, seq, event)`` tuples where ``seq``
  is a monotonically increasing tie-breaker, giving deterministic FIFO
  order for same-time events.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class Event:
    """A one-shot occurrence in virtual time.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail`
    schedules the event; the environment then runs its callbacks
    (usually resuming processes waiting on it).
    """

    __slots__ = ("env", "callbacks", "_state", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._state = _PENDING
        self._value: Any = None
        self._ok = True
        # Failed events whose exception is never retrieved should not
        # pass silently; the environment re-raises them unless someone
        # waited on the event (defused).
        self._defused = False

    # -- inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to occur."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._state == _PENDING:
            raise SimulationError("value of a pending event is not available")
        return self._value

    # -- triggering ---------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule the event to occur, carrying ``value``.

        ``delay`` schedules the occurrence that many virtual seconds in
        the future (default: now).  A delayed succeed lets a producer
        that already knows an outcome publish it without allocating a
        separate :class:`Timeout` — engines use this to fire a task's
        completion directly at ``now + service_time``.
        """
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        heappush(env._queue, (env._now + delay, 1, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to occur now, failing with ``exception``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        heappush(env._queue, (env._now, 1, seq, self))
        return self

    def _mark_processed(self) -> None:
        self._state = _PROCESSED

    def __repr__(self) -> str:
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}[self._state]
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds of virtual time from now."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined Event.__init__ plus scheduling: a Timeout is born
        # triggered, so it goes straight onto the heap.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._state = _TRIGGERED
        self.delay = delay
        seq = env._seq
        env._seq = seq + 1
        heappush(env._queue, (env._now + delay, 1, seq, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        self._state = _TRIGGERED
        seq = env._seq
        env._seq = seq + 1
        heappush(env._queue, (env._now, 1, seq, self))


class Process(Event):
    """A running generator; also an event that fires on completion.

    Processes drive the simulation: they ``yield`` events and are
    resumed when those events occur.  The value of a completed process
    is the generator's return value.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self:
            raise SimulationError("process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event._state = _TRIGGERED
        # Detach from the event the process currently waits on, so the
        # original event's callback no longer resumes us.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, priority=0)

    # -- internal -----------------------------------------------------

    def _resume(self, event: Event) -> None:
        env = self.env
        generator = self._generator
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = generator.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self._state = _TRIGGERED
                seq = env._seq
                env._seq = seq + 1
                heappush(env._queue, (env._now, 1, seq, self))
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._state = _TRIGGERED
                seq = env._seq
                env._seq = seq + 1
                heappush(env._queue, (env._now, 1, seq, self))
                break

            if type(next_event) is Timeout or isinstance(next_event, Event):
                if next_event.env is not env:
                    raise SimulationError("cannot wait on an event from another environment")

                if next_event._state == _PROCESSED:
                    # Already happened: resume immediately with its value.
                    event = next_event
                    continue

                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            exc = SimulationError(
                f"process yielded a non-event: {next_event!r}"
            )
            event = Event(env)
            event._ok = False
            event._value = exc
            event._defused = True

        env._active_process = None


class _Condition(Event):
    """Base for AllOf/AnyOf composite events.

    Duplicate events (by identity) count once: historically a
    duplicated constituent that was still pending — or ``_TRIGGERED``
    but not yet ``_PROCESSED`` — at construction registered one callback
    per occurrence, so a single firing decremented the wait count
    multiple times.  Deduplicating keeps the semantics uniform across
    all lifecycle states: ``AllOf([e, e])`` waits for ``e`` exactly
    once, matching the value dict (which can only carry ``e`` once).
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        unique: list[Event] = []
        seen: set[int] = set()
        for evt in events:
            if evt.env is not env:
                raise SimulationError("all events must share one environment")
            if id(evt) in seen:
                continue
            seen.add(id(evt))
            unique.append(evt)
        self._events = unique
        self._remaining = len(unique)
        if not unique:
            self.succeed({})
            return
        for evt in unique:
            if evt._state == _PROCESSED:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            evt: evt._value
            for evt in self._events
            if evt._state == _PROCESSED and evt._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired.

    The value is a dict mapping each event to its value.  Fails as soon
    as any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    __slots__ = ("_now", "_queue", "_seq", "_active_process")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling and execution --------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        queue = self._queue
        if not queue:
            raise SimulationError("no more events")
        when, _priority, _seq, event = heappop(queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = []
        event._state = _PROCESSED
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An un-waited-for event failed; surface the error loudly.
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run up to that virtual time), or an :class:`Event` (run until
        it fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("cannot run until a time in the past")

        # The loop below is step() inlined: everything downstream pumps
        # millions of events through here, so the per-event overhead of
        # a method call and redundant state checks is worth shaving.
        queue = self._queue

        if stop_event is not None:
            # Completion is detected via a callback flag instead of
            # polling the event's state on every iteration.
            stopped: list = []
            if stop_event._state == _PROCESSED:
                stopped.append(stop_event)
            else:
                stop_event.callbacks.append(stopped.append)
            while queue and not stopped:
                when, _priority, _seq, event = heappop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = []
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if stop_event._state != _PROCESSED:
                raise SimulationError("ran out of events before `until` fired")
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value

        while queue:
            if queue[0][0] > stop_time:
                self._now = stop_time
                return None
            when, _priority, _seq, event = heappop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = []
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value

        if stop_time != float("inf"):
            self._now = stop_time
        return None
