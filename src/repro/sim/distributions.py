"""Seeded random-variate helpers for workload synthesis.

All experiment randomness flows through :class:`Rng` so that every
benchmark run is reproducible from its seed.  The helpers implement the
distributions the serverless literature uses to describe production
workloads: exponential inter-arrival times for Poisson traffic,
log-normal execution durations (Shahrad et al. report log-normal-like
duration distributions in the Azure trace), and bounded Pareto for
heavy tails.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

__all__ = ["Rng"]


class Rng:
    """A seeded random source with workload-oriented draw helpers."""

    def __init__(self, seed: int = 0):
        self._random = random.Random(seed)
        self.seed = seed

    def fork(self, salt: int) -> "Rng":
        """Derive an independent stream (stable for a given salt)."""
        return Rng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    # -- raw draws ------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence):
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def sample(self, items: Sequence, count: int) -> list:
        return self._random.sample(items, count)

    def bernoulli(self, probability: float) -> bool:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} out of range")
        return self._random.random() < probability

    # -- distributions ----------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (> 0)."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self._random.expovariate(1.0 / mean)

    def lognormal(self, median: float, sigma: float) -> float:
        """Log-normal variate parameterised by its median and log-sd."""
        if median <= 0:
            raise ValueError("median must be positive")
        return self._random.lognormvariate(math.log(median), sigma)

    def bounded_pareto(self, shape: float, low: float, high: float) -> float:
        """Bounded Pareto variate on [low, high] with tail index ``shape``."""
        if not 0 < low < high:
            raise ValueError("need 0 < low < high")
        if shape <= 0:
            raise ValueError("shape must be positive")
        u = self._random.random()
        la = low**shape
        ha = high**shape
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / shape)

    def zipf_weights(self, count: int, skew: float = 1.0) -> list[float]:
        """Normalised Zipf popularity weights for ``count`` items."""
        if count < 1:
            raise ValueError("count must be >= 1")
        raw = [1.0 / (rank**skew) for rank in range(1, count + 1)]
        total = sum(raw)
        return [w / total for w in raw]

    # -- arrival processes -------------------------------------------------

    def poisson_arrivals(self, rate: float, duration: float, start: float = 0.0) -> list[float]:
        """Arrival times of a Poisson process over [start, start+duration)."""
        if rate < 0:
            raise ValueError("rate must be non-negative")
        arrivals: list[float] = []
        if rate == 0:
            return arrivals
        t = start
        while True:
            t += self.exponential(1.0 / rate)
            if t >= start + duration:
                return arrivals
            arrivals.append(t)

    def piecewise_poisson_arrivals(
        self, segments: Iterable[tuple[float, float]], start: float = 0.0
    ) -> list[float]:
        """Arrivals for consecutive (duration, rate) segments.

        Used to build bursty load patterns like Fig 8's changing RPS.
        """
        arrivals: list[float] = []
        t = start
        for duration, rate in segments:
            if duration < 0 or rate < 0:
                raise ValueError("duration and rate must be non-negative")
            arrivals.extend(self.poisson_arrivals(rate, duration, start=t))
            t += duration
        return arrivals
